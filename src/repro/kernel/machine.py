"""The machine: memory map, thread management, syscall plumbing.

Memory map (all addresses 32-bit):

====================  ==========  =======================================
region                base        contents
====================  ==========  =======================================
user programs         0x08048000  linked user program images
user/kernel stacks    0x20000000  one 64 KiB stack per thread
kernel image          0xC0100000  the linked kernel (text+data+bss)
exit gadget           0xC3000000  a single HLT; threads return here
kernel heap           0xC6000000  kmalloc'd objects (shadow structures)
module area           0xC8000000  loadable modules (helper/primary)
====================  ==========  =======================================

There is no privilege separation or virtual memory — a syscall is a call
through the kernel's ``syscall_entry`` code on the calling thread's own
stack, which is exactly the property the Ksplice stack check relies on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.compiler import CompilerOptions
from repro.errors import MachineError
from repro.kbuild import BuildResult, KernelConfig, SourceTree, build_tree
from repro.kernel.cpu import CPUState
from repro.kernel.memory import Memory
from repro.kernel.modules import ModuleLoader
from repro.kernel.scheduler import Scheduler
from repro.kernel.stop_machine import StopMachine
from repro.kernel.threads import Thread, ThreadStatus
from repro.linker import KernelImage, link_kernel

USER_BASE = 0x08048000
USER_AREA_SIZE = 1 << 22
STACK_AREA_BASE = 0x20000000
STACK_SIZE = 64 * 1024
MAX_THREADS = 64
GADGET_BASE = 0xC3000000
HEAP_BASE = 0xC6000000
HEAP_SIZE = 1 << 20
MODULE_BASE = 0xC8000000
MODULE_AREA_SIZE = 1 << 22

_HLT = b"\x00"

SYSCALL_ENTRY_SYMBOL = "syscall_entry"


@dataclass
class Oops:
    """Record of a thread fault (kernel oops)."""

    thread_name: str
    ip: int
    message: str


@dataclass
class MachineHealth:
    """One machine's liveness snapshot, as a fleet health probe sees it.

    ``healthy`` is the headline verdict: no oopses ever, and no faulted
    thread still on the scheduler.  The counters ride along so a
    rollout report can say *why* a member went red.  The interpreter
    perf counters (traced vs interpreted instructions, compiled and
    evicted trace counts) make JIT behavior observable per member: a
    rollout that evicts traces at stop_machine shows up here.
    """

    healthy: bool
    oops_count: int
    faulted_threads: int
    blocked_threads: int
    runnable_threads: int
    total_instructions: int
    traced_insns: int = 0
    interpreted_insns: int = 0
    trace_hits: int = 0
    traces_compiled: int = 0
    traces_evicted: int = 0
    trace_hit_rate: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "healthy": self.healthy,
            "oops_count": self.oops_count,
            "faulted_threads": self.faulted_threads,
            "blocked_threads": self.blocked_threads,
            "runnable_threads": self.runnable_threads,
            "traced_insns": self.traced_insns,
            "interpreted_insns": self.interpreted_insns,
            "trace_hits": self.trace_hits,
            "traces_compiled": self.traces_compiled,
            "traces_evicted": self.traces_evicted,
            "trace_hit_rate": self.trace_hit_rate,
        }


class Machine:
    """A running kernel instance."""

    def __init__(self, image: KernelImage,
                 require_signed_modules: bool = False,
                 quantum: int = 50):
        self.image = image
        self.memory = Memory()
        self.memory.map_segment("kernel", image.base, data=bytes(image.data),
                                executable=True)
        self.memory.map_segment("gadget", GADGET_BASE, data=_HLT,
                                writable=False, executable=True)
        # The big areas reserve address space but materialize backing
        # bytes lazily: most boots touch a fraction of them, and the
        # evaluation boots hundreds of machines.
        self.memory.map_segment("heap", HEAP_BASE, reserve=HEAP_SIZE)
        self.memory.map_segment("modules", MODULE_BASE,
                                reserve=MODULE_AREA_SIZE, executable=True)
        self.memory.map_segment("user", USER_BASE, reserve=USER_AREA_SIZE,
                                executable=True)
        self._stack_segment = self.memory.map_segment(
            "stacks", STACK_AREA_BASE, reserve=STACK_SIZE * MAX_THREADS)
        self.loader = ModuleLoader(self.memory,
                                   require_signed=require_signed_modules)
        self.scheduler = Scheduler(memory=self.memory,
                                   syscall_entry=self._enter_syscall,
                                   quantum=quantum)
        self.stop_machine = StopMachine(self.scheduler)
        self.oopses: List[Oops] = []
        self._next_tid = 1
        self._next_stack = STACK_AREA_BASE
        self._free_stacks: List[Tuple[int, int]] = []
        self._user_cursor = USER_BASE
        self._heap_cursor = HEAP_BASE
        self._syscall_entry_addr: Optional[int] = None
        entries = image.kallsyms.candidates(SYSCALL_ENTRY_SYMBOL)
        if len(entries) == 1:
            self._syscall_entry_addr = entries[0].address

    # -- memory helpers -------------------------------------------------------

    def read_u32(self, address: int) -> int:
        return self.memory.read_u32(address)

    def write_u32(self, address: int, value: int) -> None:
        self.memory.write_u32(address, value)

    def read_bytes(self, address: int, count: int) -> bytes:
        return self.memory.read_bytes(address, count)

    def kmalloc(self, size: int) -> int:
        """Allocate zeroed kernel-heap memory (bump allocator)."""
        aligned = (size + 3) & ~3
        if self._heap_cursor + aligned > HEAP_BASE + HEAP_SIZE:
            raise MachineError("kernel heap exhausted")
        address = self._heap_cursor
        self._heap_cursor += aligned
        self.memory.write_bytes(address, bytes(aligned))
        return address

    def symbol(self, name: str) -> int:
        """Unambiguous kallsyms lookup."""
        return self.image.kallsyms.unique_address(name)

    # -- threads ---------------------------------------------------------------

    def _allocate_stack(self) -> Tuple[int, int]:
        if self._free_stacks:
            return self._free_stacks.pop()
        if self._next_stack + STACK_SIZE > STACK_AREA_BASE + \
                STACK_SIZE * MAX_THREADS:
            raise MachineError("out of thread stacks")
        base = self._next_stack
        self._next_stack += STACK_SIZE
        return base, STACK_SIZE

    def reap_thread(self, thread: Thread) -> None:
        """Remove a finished thread and recycle its stack."""
        if thread.alive:
            raise MachineError("cannot reap a live thread %s" % thread.name)
        if thread in self.scheduler.threads:
            self.scheduler.threads.remove(thread)
        self._free_stacks.append((thread.stack_base, thread.stack_size))

    def create_thread(self, entry: Union[str, int],
                      args: Sequence[int] = (),
                      name: Optional[str] = None,
                      is_user: bool = False) -> Thread:
        """Create a thread that calls ``entry(args...)`` then halts."""
        address = self.symbol(entry) if isinstance(entry, str) else entry
        stack_base, stack_size = self._allocate_stack()
        cpu = CPUState()
        cpu.ip = address
        sp = stack_base + stack_size
        for value in reversed(list(args)):
            sp -= 4
            self.memory.write_u32(sp, value)
        sp -= 4
        self.memory.write_u32(sp, GADGET_BASE)  # return -> HLT
        cpu.set_reg(6, sp)
        thread = Thread(tid=self._next_tid,
                        name=name or ("thread-%d" % self._next_tid),
                        cpu=cpu, stack_base=stack_base,
                        stack_size=stack_size, is_user=is_user)
        self._next_tid += 1
        self.scheduler.add(thread)
        return thread

    def _enter_syscall(self, thread: Thread) -> None:
        """SYSCALL instruction: call through the kernel entry point.

        The return-address push lands on the caller's stack (a plain
        writable segment) in the overwhelmingly common case, so it is
        written through the segment's backing bytes directly — this
        trampoline runs for every syscall on every workload and its
        cost is pure overhead on top of the guest's own instructions.
        """
        if self._syscall_entry_addr is None:
            raise MachineError("kernel has no %s symbol"
                               % SYSCALL_ENTRY_SYMBOL)
        cpu = thread.cpu
        sp = cpu.reg(6) - 4
        segment = self._stack_segment
        offset = sp - segment.base
        data = segment.data
        if 0 <= offset and offset + 4 <= len(data):
            struct.pack_into("<I", data, offset, cpu.ip)
        else:
            # off-stack sp (or not yet materialized): full write path
            self.memory.write_u32(sp, cpu.ip)
        cpu.set_reg(6, sp)
        cpu.ip = self._syscall_entry_addr

    # -- execution ---------------------------------------------------------------

    def run(self, max_instructions: int = 1_000_000) -> int:
        executed = self.scheduler.run(max_instructions)
        self._collect_oopses()
        return executed

    def run_thread(self, thread: Thread,
                   max_instructions: int = 1_000_000) -> Optional[int]:
        """Run only ``thread`` until it exits; returns its exit value.

        Works even while stop_machine has the scheduler frozen, which is
        how update hook functions execute during the stopped window.
        """
        budget = max_instructions
        while thread.alive and budget > 0:
            before = thread.instructions_executed
            self.scheduler.run_quantum(thread)
            budget -= thread.instructions_executed - before
        self._collect_oopses()
        if thread.status is ThreadStatus.FAULTED:
            raise MachineError(
                "thread %s oops: %s" % (thread.name, thread.fault))
        if thread.alive:
            raise MachineError(
                "thread %s did not finish within %d instructions"
                % (thread.name, max_instructions))
        return thread.exit_value

    def call_function(self, entry: Union[str, int],
                      args: Sequence[int] = (),
                      max_instructions: int = 1_000_000) -> Optional[int]:
        """Call a kernel function synchronously on a fresh thread.

        The thread is reaped afterwards, so repeated calls do not exhaust
        the stack area.
        """
        thread = self.create_thread(entry, args=args,
                                    name="call-%s" % entry)
        try:
            return self.run_thread(thread, max_instructions)
        finally:
            if not thread.alive:
                self.reap_thread(thread)

    def _collect_oopses(self) -> None:
        for thread in self.scheduler.threads:
            if thread.status is ThreadStatus.FAULTED and not any(
                    o.thread_name == thread.name for o in self.oopses):
                self.oopses.append(Oops(thread_name=thread.name,
                                        ip=thread.cpu.ip,
                                        message=thread.fault or ""))

    # -- sleep/wake (fleet health, §5.2 quiescence scenarios) ---------------

    def sleep_thread(self, thread: Thread) -> None:
        """Put a live thread to sleep: never scheduled, stack stays live.

        This is the §5.2 hazard in miniature — a thread asleep inside a
        patched function keeps its return addresses on the stack, so
        the conservative stack check keeps vetoing stop_machine until
        the thread wakes.
        """
        if not thread.alive:
            raise MachineError("cannot sleep finished thread %s"
                               % thread.name)
        thread.status = ThreadStatus.BLOCKED

    def wake_thread(self, thread: Thread) -> None:
        """Make a blocked thread schedulable again."""
        if thread.status is not ThreadStatus.BLOCKED:
            raise MachineError("thread %s is not blocked" % thread.name)
        thread.status = ThreadStatus.READY

    def trace_stats(self) -> dict:
        """This machine's JIT counters (zeros when nothing compiled)."""
        cache = self.memory._decode_cache
        total = self.scheduler.total_instructions
        traced = cache.traced_insns if cache is not None else 0
        return {
            "traced_insns": traced,
            "interpreted_insns": max(total - traced, 0),
            "trace_hits": cache.trace_hits if cache is not None else 0,
            "traces_compiled": cache.compiled if cache is not None else 0,
            "traces_evicted": cache.evicted if cache is not None else 0,
            "trace_hit_rate": traced / total if total else 0.0,
        }

    def health(self) -> MachineHealth:
        """Liveness snapshot for fleet health gating."""
        self._collect_oopses()
        statuses = [t.status for t in self.scheduler.threads]
        faulted = sum(1 for s in statuses if s is ThreadStatus.FAULTED)
        blocked = sum(1 for s in statuses if s is ThreadStatus.BLOCKED)
        runnable = sum(1 for s in statuses
                       if s in (ThreadStatus.READY, ThreadStatus.RUNNING))
        trace = self.trace_stats()
        return MachineHealth(
            healthy=not self.oopses and not faulted,
            oops_count=len(self.oopses),
            faulted_threads=faulted,
            blocked_threads=blocked,
            runnable_threads=runnable,
            total_instructions=self.scheduler.total_instructions,
            traced_insns=trace["traced_insns"],
            interpreted_insns=trace["interpreted_insns"],
            trace_hits=trace["trace_hits"],
            traces_compiled=trace["traces_compiled"],
            traces_evicted=trace["traces_evicted"],
            trace_hit_rate=trace["trace_hit_rate"])

    # -- user programs -------------------------------------------------------------

    def load_user_program(self, source: str, name: str = "a.out",
                          options: Optional[CompilerOptions] = None) -> Thread:
        """Compile, link, and load a user MiniC program; thread starts at
        ``main``."""
        tree = SourceTree(version=name, files={name + ".c": source})
        build = build_tree(tree, options or CompilerOptions())
        cursor = (self._user_cursor + 15) & ~15
        image = link_kernel(build, base=cursor)
        end = image.end
        if end > USER_BASE + USER_AREA_SIZE:
            raise MachineError("user area exhausted")
        self.memory.write_bytes(cursor, bytes(image.data))
        self._user_cursor = end
        main = image.kallsyms.unique_address("main")
        return self.create_thread(main, name=name, is_user=True)

    def run_user_program(self, source: str, name: str = "a.out",
                         max_instructions: int = 1_000_000) -> Optional[int]:
        """Convenience: load and run a user program to completion."""
        thread = self.load_user_program(source, name=name)
        return self.run_thread(thread, max_instructions)


def boot_kernel(tree: SourceTree,
                options: Optional[CompilerOptions] = None,
                config: Optional[KernelConfig] = None,
                require_signed_modules: bool = False,
                build: Optional[BuildResult] = None,
                quantum: int = 50) -> Machine:
    """Build, link, and boot a kernel from source.

    If the kernel defines ``kernel_init``, it runs to completion on the
    boot thread before this returns — which is what makes "changes data
    init" patches (Table 1) interesting: by the time an update is applied
    the init code has already run.
    """
    if build is None:
        build = build_tree(tree, options or CompilerOptions(), config)
    image = link_kernel(build)
    machine = Machine(image, require_signed_modules=require_signed_modules,
                      quantum=quantum)
    init_candidates = image.kallsyms.candidates("kernel_init")
    if len(init_candidates) == 1:
        machine.call_function("kernel_init")
    return machine

"""The simulated running kernel.

A :class:`~repro.kernel.machine.Machine` owns a flat physical memory with
the linked kernel image mapped at its base, a module area, kernel stacks,
and a user area; threads execute real k86 instructions through the CPU
interpreter under a preemptive round-robin scheduler.  Syscalls are calls
into the kernel's ``syscall_entry`` code, so kernel code genuinely runs on
thread stacks — which is what makes the Ksplice stack check (§5.2)
meaningful here.
"""

from repro.kernel.memory import Memory, Segment
from repro.kernel.cpu import (
    TRACE_STATS,
    CPUState,
    StepEvent,
    jit_enabled,
    set_jit_enabled,
    step,
)
from repro.kernel.threads import Thread, ThreadStatus
from repro.kernel.scheduler import Scheduler
from repro.kernel.stop_machine import StopMachine, StopMachineReport
from repro.kernel.modules import LoadedModule, ModuleLoader
from repro.kernel.machine import Machine, boot_kernel

__all__ = [
    "CPUState",
    "LoadedModule",
    "TRACE_STATS",
    "jit_enabled",
    "set_jit_enabled",
    "Machine",
    "Memory",
    "ModuleLoader",
    "Scheduler",
    "Segment",
    "StepEvent",
    "StopMachine",
    "StopMachineReport",
    "Thread",
    "ThreadStatus",
    "boot_kernel",
    "step",
]

"""Loadable kernel modules.

The module loader places an object file's sections into the machine's
module area, resolves its relocations through a caller-supplied symbol
resolver, and exposes the resulting addresses.  Ksplice's helper and
primary modules (§5.1) load through this path; the "signed modules only"
policy switch models why run-pre matching must run in kernel space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ModuleLoadError
from repro.kernel.memory import Memory
from repro.linker.link import resolve_section_relocations
from repro.objfile import ObjectFile


def _align(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass
class LoadedModule:
    """One module resident in the module area."""

    name: str
    objfile: ObjectFile
    section_addresses: Dict[str, int] = field(default_factory=dict)
    symbol_addresses: Dict[str, int] = field(default_factory=dict)
    base: int = 0
    size: int = 0
    loaded: bool = True
    signed: bool = True

    def section_address(self, section_name: str) -> int:
        try:
            return self.section_addresses[section_name]
        except KeyError:
            raise ModuleLoadError(
                "module %s has no section %s" % (self.name, section_name)
            ) from None

    def symbol_address(self, name: str) -> int:
        try:
            return self.symbol_addresses[name]
        except KeyError:
            raise ModuleLoadError(
                "module %s defines no symbol %s" % (self.name, name)
            ) from None


class ModuleLoader:
    """Bump-allocating loader over the machine's module segment."""

    def __init__(self, memory: Memory, segment_name: str = "modules",
                 require_signed: bool = False):
        self._memory = memory
        self._segment = memory.segment(segment_name)
        self._cursor = self._segment.base
        self._require_signed = require_signed
        self.loaded: List[LoadedModule] = []

    def load(self, objfile: ObjectFile,
             resolver: Callable[[str], int],
             signed: bool = True,
             defer_relocations_for: Optional[List[str]] = None) -> LoadedModule:
        """Load ``objfile``, resolving every relocation via ``resolver``.

        ``defer_relocations_for``: section names whose relocations should
        NOT be applied yet (Ksplice's primary module defers until run-pre
        matching has produced trusted symbol values).
        """
        if self._require_signed and not signed:
            raise ModuleLoadError(
                "kernel policy forbids loading unsigned module %s"
                % objfile.name)
        module = LoadedModule(name=objfile.name, objfile=objfile,
                              signed=signed)
        module.base = _align(self._cursor, 16)
        cursor = module.base
        for section in objfile.sections.values():
            cursor = _align(cursor, max(section.alignment, 1))
            if cursor + section.size > self._segment.end:
                raise ModuleLoadError(
                    "module area exhausted while loading %s" % objfile.name)
            module.section_addresses[section.name] = cursor
            self._memory.write_bytes(cursor, bytes(section.data))
            cursor += section.size
        module.size = cursor - module.base
        self._cursor = cursor

        deferred = set(defer_relocations_for or ())
        for section in objfile.sections.values():
            if section.name in deferred:
                continue
            self._apply_relocations(module, section, resolver)

        for symbol in objfile.defined_symbols():
            module.symbol_addresses[symbol.name] = \
                module.section_addresses[symbol.section] + symbol.value

        self.loaded.append(module)
        return module

    def _apply_relocations(self, module: LoadedModule, section,
                           resolver: Callable[[str], int]) -> None:
        address = module.section_addresses[section.name]
        span = max(section.size, 1)
        segment = self._memory.segment_for(address, span)
        segment.materialize(address - segment.base + span)
        resolve_section_relocations(
            section, address,
            self._module_resolver(module, resolver),
            segment.data, address - segment.base)
        if segment.executable and section.relocations:
            # The patching above bypassed Memory.write_bytes; tell the
            # decode cache (deferred relocations run after execution).
            self._memory.notify_exec_write(address, span)

    def apply_deferred_relocations(self, module: LoadedModule,
                                   section_name: str,
                                   resolver: Callable[[str], int]) -> None:
        """Apply the relocations that were deferred at load time."""
        self._apply_relocations(module, module.objfile.section(section_name),
                                resolver)

    def _module_resolver(self, module: LoadedModule,
                         external: Callable[[str], int]) -> Callable[[str], int]:
        def resolve(name: str) -> int:
            symbol = module.objfile.find_symbol(name)
            if symbol is not None and symbol.is_defined:
                return (module.section_addresses[symbol.section]
                        + symbol.value)
            return external(name)
        return resolve

    def unload(self, module: LoadedModule) -> None:
        """Unload a module (the paper unloads helper modules to save
        memory).  The bump allocator does not reclaim the region; the
        module is marked dead and its memory zeroed."""
        if not module.loaded:
            raise ModuleLoadError("module %s already unloaded" % module.name)
        module.loaded = False
        self._memory.write_bytes(module.base, bytes(module.size))
        self.loaded.remove(module)

    def resident_bytes(self) -> int:
        return sum(m.size for m in self.loaded)

"""Flat segmented physical memory."""

from __future__ import annotations

import struct
import sys
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import MachineError


@dataclass
class Segment:
    """One mapped region of memory.

    ``executable`` marks segments instructions may be fetched from;
    writes to them invalidate the CPU's decode cache (self-modifying
    code — Ksplice's jump insertion — must be observed immediately).

    ``reserved`` is the segment's full addressable size; backing bytes
    beyond ``len(data)`` are materialized (zero-filled) on first touch.
    Eagerly zeroing the multi-megabyte stack/user/module areas dominated
    boot time when the evaluation boots hundreds of machines.
    """

    name: str
    base: int
    data: bytearray
    writable: bool = True
    executable: bool = False
    reserved: int = 0

    def __post_init__(self) -> None:
        if self.reserved < len(self.data):
            self.reserved = len(self.data)

    @property
    def size(self) -> int:
        return self.reserved

    @property
    def end(self) -> int:
        return self.base + self.reserved

    def contains(self, address: int, count: int = 1) -> bool:
        return self.base <= address and address + count <= self.end

    def materialize(self, upto: int) -> None:
        """Ensure backing bytes exist for offsets below ``upto``.

        Growth is amortized (doubling, 64 KiB floor) so a bump-allocated
        area costs O(touched bytes), not O(touches).
        """
        have = len(self.data)
        if upto <= have:
            return
        target = min(self.reserved, max(upto, have * 2, 1 << 16))
        self.data.extend(bytes(target - have))


class Memory:
    """A sparse 32-bit address space built from non-overlapping segments."""

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        self._last_hit: Optional[Segment] = None
        #: bumped on every write; lets the CPU cache decoded instructions
        #: and still observe self-modifying code (jump insertion).
        self.write_version = 0
        #: decode cache attached by the CPU (repro.kernel.cpu).  Writes
        #: to executable segments clear it in place, so the CPU's hot
        #: loop needs no per-instruction version check.
        self._decode_cache = None
        #: shared (read, write, holder) bundle for JIT traces — built
        #: lazily so machines that never trace pay nothing.
        self._jit_accessors = None

    def map_segment(self, name: str, base: int, size: int = 0,
                    data: Optional[bytes] = None,
                    writable: bool = True,
                    executable: bool = False,
                    reserve: int = 0) -> Segment:
        """Map a region.  ``size``/``data`` bytes are materialized now;
        ``reserve`` additionally makes the region addressable up to that
        many bytes, zero-filled lazily on first touch."""
        payload = bytearray(data) if data is not None else bytearray(size)
        segment = Segment(name=name, base=base, data=payload,
                          writable=writable, executable=executable,
                          reserved=reserve)
        for existing in self._segments:
            if segment.base < existing.end and existing.base < segment.end:
                raise MachineError(
                    "segment %s overlaps %s" % (name, existing.name))
        self._segments.append(segment)
        self._segments.sort(key=lambda s: s.base)
        return segment

    def segment(self, name: str) -> Segment:
        for segment in self._segments:
            if segment.name == name:
                return segment
        raise MachineError("no segment named %s" % name)

    def segment_for(self, address: int, count: int = 1) -> Segment:
        last = self._last_hit
        if last is not None and last.contains(address, count):
            return last
        for segment in self._segments:
            if segment.contains(address, count):
                self._last_hit = segment
                return segment
        raise MachineError(
            "unmapped memory access at 0x%08x (+%d)" % (address, count))

    # -- accessors ------------------------------------------------------------

    def read_bytes(self, address: int, count: int) -> bytes:
        segment = self.segment_for(address, count)
        offset = address - segment.base
        end = offset + count
        if end > len(segment.data):
            segment.materialize(end)
        return bytes(segment.data[offset:end])

    def write_bytes(self, address: int, payload: bytes) -> None:
        segment = self.segment_for(address, len(payload))
        if not segment.writable:
            raise MachineError(
                "write to read-only segment %s at 0x%08x"
                % (segment.name, address))
        offset = address - segment.base
        if offset + len(payload) > len(segment.data):
            segment.materialize(offset + len(payload))
        segment.data[offset:offset + len(payload)] = payload
        if segment.executable:
            self.notify_exec_write(address, len(payload))

    def notify_exec_write(self, address: int, count: int) -> None:
        """Record that executable bytes changed (self-modifying code).

        Delegates to the decode cache's range invalidation: only cached
        instructions overlapping the written range are dropped (a cached
        instruction can start up to max-length minus one bytes before
        it), and any compiled JIT trace whose byte range overlaps the
        write is evicted — this is the hook that makes Ksplice's
        stop_machine jump insertion (and ``undo``'s byte restoration)
        immediately visible to traced execution.  Mutations are in
        place: the CPU's run loop aliases the entries dict.  Callers
        that mutate ``segment.data`` directly (the module loader's
        relocation patching) must call this themselves.
        """
        self.write_version += 1
        cache = self._decode_cache
        if cache is not None:
            cache.invalidate_range(address, count)
            cache.version = self.write_version

    # -- JIT fast accessors ---------------------------------------------------

    def jit_accessors(self) -> tuple:
        """Shared ``(read, write, holder)`` bundle for JIT traces.

        ``holder`` is a flat 12-slot list caching two segments as
        ``[lo, hi, view, base_word, plain, writable]`` tuples —
        generated trace code loads it into locals at entry and
        performs bounds-checked word access inline through ``view``,
        a ``memoryview(...).cast("I")`` over the segment's backing
        bytes, paying a Python call only on a miss.  ``hi`` is the
        *last* address holding a complete aligned word, so the inline
        hit test is a single chained comparison plus an alignment
        check; ``base_word`` is ``lo >> 2`` so the word index is one
        shift and one subtract.  ``plain`` is True when the segment
        is writable and non-executable: inline *stores* take it
        unconditionally; a writable *executable* segment (the kernel
        image maps text and data together) is inlined only when the
        stored word misses the decode cache's code-word set — such a
        store cannot overlap any cached instruction or compiled
        trace, so skipping :meth:`notify_exec_write` is sound; any
        store that could patch code takes the ``write`` closure.
        Inline *loads* only need the bounds.  Compiled loops
        ping-pong between the thread stack (locals) and the kernel
        image (globals), which is why two slots are cached, and why
        the bundle is shared by every trace of this Memory rather
        than rebuilt per trace.

        A live memoryview pins the bytearray's buffer, so a segment
        is fully materialized (its whole ``reserved`` range — all
        areas reserve at most a few MiB) before its view is built;
        ``materialize`` then never resizes it again.  Word views
        require a little-endian host and a 4-aligned segment base;
        otherwise the segment simply never installs and every access
        takes the (correct, slower) closure.  The closures are
        semantically identical to :meth:`read_u32` /
        :meth:`write_u32` (same segment resolution, error messages,
        and invalidation hook).
        """
        acc = self._jit_accessors
        if acc is not None:
            return acc

        unpack_from = struct.unpack_from
        pack_into = struct.pack_into
        little = sys.byteorder == "little"
        # hi of -1 makes an empty slot's bounds test unsatisfiable
        holder: list = [0, -1, None, 0, False, False,
                        0, -1, None, 0, False, False]
        #: last executable segment stored to (kernel globals live in
        #: the executable image, so traced loops store there every
        #: iteration); lets ``write`` skip segment resolution while
        #: keeping the invalidation hook
        last_exec: list = [None]

        def _view_of(segment: Segment):
            view = getattr(segment, "_view32", None)
            if view is None:
                if len(segment.data) < segment.reserved:
                    segment.materialize(segment.reserved)
                data = segment.data
                usable = len(data) & ~3
                if little and usable and not segment.base & 3:
                    mv = memoryview(data)
                    if usable != len(data):
                        mv = mv[:usable]
                    view = mv.cast("I")
                else:
                    view = False  # unusable: never install this one
                segment._view32 = view
            return view

        def _install(segment: Segment, view) -> None:
            base = segment.base
            hi = base + (len(view) << 2) - 4
            plain = segment.writable and not segment.executable
            if holder[0] == base:
                holder[1] = hi
                holder[2] = view
                holder[4] = plain
                holder[5] = segment.writable
            elif holder[6] == base:
                holder[7] = hi
                holder[8] = view
                holder[10] = plain
                holder[11] = segment.writable
            else:
                holder[6:12] = holder[0:6]
                holder[0] = base
                holder[1] = hi
                holder[2] = view
                holder[3] = base >> 2
                holder[4] = plain
                holder[5] = segment.writable

        def read(address: int, memory: "Memory" = self) -> int:
            segment = memory.segment_for(address, 4)
            view = _view_of(segment)
            if view is not False:
                _install(segment, view)
            offset = address - segment.base
            data = segment.data
            if offset + 4 > len(data):
                segment.materialize(offset + 4)
                data = segment.data
            word = unpack_from("<I", data, offset)[0]
            return word  # type: ignore[no-any-return]

        def write(address: int, value: int,
                  memory: "Memory" = self) -> None:
            segment = last_exec[0]
            if segment is not None and segment.contains(address, 4):
                offset = address - segment.base
                data = segment.data
                if offset + 4 <= len(data):
                    pack_into("<I", data, offset, value & 0xFFFFFFFF)
                    memory.notify_exec_write(address, 4)
                    return
            segment = memory.segment_for(address, 4)
            if not segment.writable:
                raise MachineError(
                    "write to read-only segment %s at 0x%08x"
                    % (segment.name, address))
            view = _view_of(segment)
            if view is not False:
                _install(segment, view)
            offset = address - segment.base
            if offset + 4 > len(segment.data):
                segment.materialize(offset + 4)
            pack_into("<I", segment.data, offset, value & 0xFFFFFFFF)
            if segment.executable:
                memory.notify_exec_write(address, 4)
                last_exec[0] = segment

        self._jit_accessors = acc = (read, write, holder)
        return acc

    def fast_reader(self) -> Callable[[int], int]:
        """u32 reader for JIT traces (see :meth:`jit_accessors`)."""
        return self.jit_accessors()[0]  # type: ignore[no-any-return]

    def fast_writer(self) -> Callable[[int, int], None]:
        """u32 writer for JIT traces (see :meth:`jit_accessors`)."""
        return self.jit_accessors()[1]  # type: ignore[no-any-return]

    def read_u8(self, address: int) -> int:
        return self.read_bytes(address, 1)[0]

    def read_u32(self, address: int) -> int:
        return struct.unpack("<I", self.read_bytes(address, 4))[0]

    def write_u32(self, address: int, value: int) -> None:
        self.write_bytes(address, struct.pack("<I", value & 0xFFFFFFFF))

    def is_mapped(self, address: int, count: int = 1) -> bool:
        try:
            self.segment_for(address, count)
            return True
        except MachineError:
            return False

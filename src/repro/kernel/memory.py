"""Flat segmented physical memory."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.arch.isa import MAX_INSTRUCTION_LENGTH
from repro.errors import MachineError


@dataclass
class Segment:
    """One mapped region of memory.

    ``executable`` marks segments instructions may be fetched from;
    writes to them invalidate the CPU's decode cache (self-modifying
    code — Ksplice's jump insertion — must be observed immediately).

    ``reserved`` is the segment's full addressable size; backing bytes
    beyond ``len(data)`` are materialized (zero-filled) on first touch.
    Eagerly zeroing the multi-megabyte stack/user/module areas dominated
    boot time when the evaluation boots hundreds of machines.
    """

    name: str
    base: int
    data: bytearray
    writable: bool = True
    executable: bool = False
    reserved: int = 0

    def __post_init__(self) -> None:
        if self.reserved < len(self.data):
            self.reserved = len(self.data)

    @property
    def size(self) -> int:
        return self.reserved

    @property
    def end(self) -> int:
        return self.base + self.reserved

    def contains(self, address: int, count: int = 1) -> bool:
        return self.base <= address and address + count <= self.end

    def materialize(self, upto: int) -> None:
        """Ensure backing bytes exist for offsets below ``upto``.

        Growth is amortized (doubling, 64 KiB floor) so a bump-allocated
        area costs O(touched bytes), not O(touches).
        """
        have = len(self.data)
        if upto <= have:
            return
        target = min(self.reserved, max(upto, have * 2, 1 << 16))
        self.data.extend(bytes(target - have))


class Memory:
    """A sparse 32-bit address space built from non-overlapping segments."""

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        self._last_hit: Optional[Segment] = None
        #: bumped on every write; lets the CPU cache decoded instructions
        #: and still observe self-modifying code (jump insertion).
        self.write_version = 0
        #: decode cache attached by the CPU (repro.kernel.cpu).  Writes
        #: to executable segments clear it in place, so the CPU's hot
        #: loop needs no per-instruction version check.
        self._decode_cache = None

    def map_segment(self, name: str, base: int, size: int = 0,
                    data: Optional[bytes] = None,
                    writable: bool = True,
                    executable: bool = False,
                    reserve: int = 0) -> Segment:
        """Map a region.  ``size``/``data`` bytes are materialized now;
        ``reserve`` additionally makes the region addressable up to that
        many bytes, zero-filled lazily on first touch."""
        payload = bytearray(data) if data is not None else bytearray(size)
        segment = Segment(name=name, base=base, data=payload,
                          writable=writable, executable=executable,
                          reserved=reserve)
        for existing in self._segments:
            if segment.base < existing.end and existing.base < segment.end:
                raise MachineError(
                    "segment %s overlaps %s" % (name, existing.name))
        self._segments.append(segment)
        self._segments.sort(key=lambda s: s.base)
        return segment

    def segment(self, name: str) -> Segment:
        for segment in self._segments:
            if segment.name == name:
                return segment
        raise MachineError("no segment named %s" % name)

    def segment_for(self, address: int, count: int = 1) -> Segment:
        last = self._last_hit
        if last is not None and last.contains(address, count):
            return last
        for segment in self._segments:
            if segment.contains(address, count):
                self._last_hit = segment
                return segment
        raise MachineError(
            "unmapped memory access at 0x%08x (+%d)" % (address, count))

    # -- accessors ------------------------------------------------------------

    def read_bytes(self, address: int, count: int) -> bytes:
        segment = self.segment_for(address, count)
        offset = address - segment.base
        end = offset + count
        if end > len(segment.data):
            segment.materialize(end)
        return bytes(segment.data[offset:end])

    def write_bytes(self, address: int, payload: bytes) -> None:
        segment = self.segment_for(address, len(payload))
        if not segment.writable:
            raise MachineError(
                "write to read-only segment %s at 0x%08x"
                % (segment.name, address))
        offset = address - segment.base
        if offset + len(payload) > len(segment.data):
            segment.materialize(offset + len(payload))
        segment.data[offset:offset + len(payload)] = payload
        if segment.executable:
            self.notify_exec_write(address, len(payload))

    def notify_exec_write(self, address: int, count: int) -> None:
        """Record that executable bytes changed (self-modifying code).

        Invalidates only cached instructions overlapping the written
        range (a cached instruction can start up to max-length minus one
        bytes before it).  Mutations are in place: the CPU's run loop
        aliases the entries dict.  Wholesale clears would force a full
        re-decode of the hot path on every module/program load.  Callers
        that mutate ``segment.data`` directly (the module loader's
        relocation patching) must call this themselves.
        """
        self.write_version += 1
        cache = self._decode_cache
        if cache is not None:
            entries = cache.entries
            if entries:
                lo = address - (MAX_INSTRUCTION_LENGTH - 1)
                span = count + MAX_INSTRUCTION_LENGTH - 1
                if span > 4 * len(entries) + 64:
                    entries.clear()
                else:
                    for ip in range(lo, lo + span):
                        entries.pop(ip, None)
            cache.version = self.write_version

    def read_u8(self, address: int) -> int:
        return self.read_bytes(address, 1)[0]

    def read_u32(self, address: int) -> int:
        return struct.unpack("<I", self.read_bytes(address, 4))[0]

    def write_u32(self, address: int, value: int) -> None:
        self.write_bytes(address, struct.pack("<I", value & 0xFFFFFFFF))

    def is_mapped(self, address: int, count: int = 1) -> bool:
        try:
            self.segment_for(address, count)
            return True
        except MachineError:
            return False

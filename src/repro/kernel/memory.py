"""Flat segmented physical memory."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import MachineError


@dataclass
class Segment:
    """One mapped region of memory.

    ``executable`` marks segments instructions may be fetched from;
    writes to them invalidate the CPU's decode cache (self-modifying
    code — Ksplice's jump insertion — must be observed immediately).
    """

    name: str
    base: int
    data: bytearray
    writable: bool = True
    executable: bool = False

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, count: int = 1) -> bool:
        return self.base <= address and address + count <= self.end


class Memory:
    """A sparse 32-bit address space built from non-overlapping segments."""

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        self._last_hit: Optional[Segment] = None
        #: bumped on every write; lets the CPU cache decoded instructions
        #: and still observe self-modifying code (jump insertion).
        self.write_version = 0

    def map_segment(self, name: str, base: int, size: int = 0,
                    data: Optional[bytes] = None,
                    writable: bool = True,
                    executable: bool = False) -> Segment:
        payload = bytearray(data) if data is not None else bytearray(size)
        segment = Segment(name=name, base=base, data=payload,
                          writable=writable, executable=executable)
        for existing in self._segments:
            if segment.base < existing.end and existing.base < segment.end:
                raise MachineError(
                    "segment %s overlaps %s" % (name, existing.name))
        self._segments.append(segment)
        self._segments.sort(key=lambda s: s.base)
        return segment

    def segment(self, name: str) -> Segment:
        for segment in self._segments:
            if segment.name == name:
                return segment
        raise MachineError("no segment named %s" % name)

    def segment_for(self, address: int, count: int = 1) -> Segment:
        last = self._last_hit
        if last is not None and last.contains(address, count):
            return last
        for segment in self._segments:
            if segment.contains(address, count):
                self._last_hit = segment
                return segment
        raise MachineError(
            "unmapped memory access at 0x%08x (+%d)" % (address, count))

    # -- accessors ------------------------------------------------------------

    def read_bytes(self, address: int, count: int) -> bytes:
        segment = self.segment_for(address, count)
        offset = address - segment.base
        return bytes(segment.data[offset:offset + count])

    def write_bytes(self, address: int, payload: bytes) -> None:
        segment = self.segment_for(address, len(payload))
        if not segment.writable:
            raise MachineError(
                "write to read-only segment %s at 0x%08x"
                % (segment.name, address))
        offset = address - segment.base
        segment.data[offset:offset + len(payload)] = payload
        if segment.executable:
            self.write_version += 1

    def read_u8(self, address: int) -> int:
        return self.read_bytes(address, 1)[0]

    def read_u32(self, address: int) -> int:
        return struct.unpack("<I", self.read_bytes(address, 4))[0]

    def write_u32(self, address: int, value: int) -> None:
        self.write_bytes(address, struct.pack("<I", value & 0xFFFFFFFF))

    def is_mapped(self, address: int, count: int = 1) -> bool:
        try:
            self.segment_for(address, count)
            return True
        except MachineError:
            return False

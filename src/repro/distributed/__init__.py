"""Distributed evaluation fabric: the §6 corpus run beyond one host.

The local evaluation engine (:mod:`repro.evaluation.engine`) already
fans kernel-version groups over a ``ProcessPoolExecutor``; this package
extends the same design over TCP so throughput scales with *workers*,
not with one machine's cores:

* :mod:`~repro.distributed.protocol` — length-prefixed framing and the
  nine-message wire vocabulary;
* :mod:`~repro.distributed.worker` — the ``repro worker`` serve loop:
  evaluates items, streams each ``CveResult`` as it finishes, answers
  heartbeats while evaluating, and can be spawned on localhost for
  tests;
* :mod:`~repro.distributed.coordinator` — the scheduler: per-version
  lead items that warm the run-build cache, then per-CVE work-stealing
  for the tails, heartbeats, bounded retry with backoff, and local
  rescue of anything the fleet cannot finish;
* :mod:`~repro.distributed.executor` — a ``ProcessPoolExecutor``-shaped
  adapter so group-based code (``engine._evaluate_parallel``) runs
  against remote workers unchanged.

Entry points: ``evaluate_corpus(workers=[...])`` /
``repro evaluate --workers`` on the coordinator side and
``repro worker --listen`` on the worker side.  Workers started with a
shared secret (``--secret`` / ``KSPLICE_WORKER_SECRET``) authenticate
peers with an HMAC challenge/response before deserializing anything,
and ``--item-timeout`` bounds each item's wall clock so one wedged CVE
cannot hang a session.
"""

from repro.distributed.coordinator import Coordinator, WorkItem
from repro.distributed.executor import DistributedExecutor
from repro.distributed.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    SECRET_ENV,
    AuthError,
    MessageStream,
    ProtocolError,
    default_secret,
    parse_address,
    recv_message,
    send_message,
)
from repro.distributed.worker import (
    LocalWorker,
    serve,
    spawn_local_workers,
)

__all__ = [
    "AuthError",
    "Coordinator",
    "DistributedExecutor",
    "LocalWorker",
    "MAX_FRAME",
    "MessageStream",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SECRET_ENV",
    "WorkItem",
    "default_secret",
    "parse_address",
    "recv_message",
    "send_message",
    "serve",
    "spawn_local_workers",
]

"""Distributed evaluation fabric: the §6 corpus run beyond one host.

The local evaluation engine (:mod:`repro.evaluation.engine`) already
fans kernel-version groups over a ``ProcessPoolExecutor``; this package
extends the same design over TCP so throughput scales with *workers*,
not with one machine's cores:

* :mod:`~repro.distributed.wire` — protocol v3's compact binary
  codec: struct-packed, length-prefixed, versioned frames over a
  closed class registry (``pickle`` is gone from the data plane);
* :mod:`~repro.distributed.crypto` — the mutual handshake (HMAC
  challenge/response with a shared secret, anonymous DH without one),
  per-session key derivation, and the frame cipher that encrypts
  every post-handshake record;
* :mod:`~repro.distributed.protocol` — framing and the wire
  vocabulary, plus the synchronous :class:`MessageStream` adapter for
  blocking callers (``fleet/remote``, the executor);
* :mod:`~repro.distributed.aio` — the asyncio transport: one event
  loop multiplexing thousands of peers, bounded per-peer send queues
  for backpressure, batch-sealed records;
* :mod:`~repro.distributed.worker` — the ``repro worker`` serve loop:
  evaluates items in executor threads (heartbeats are answered while
  an item runs), streams each ``CveResult`` as it finishes, and can
  be spawned on localhost for tests;
* :mod:`~repro.distributed.coordinator` — the scheduler: per-version
  lead items that warm the run-build cache, then per-CVE work-stealing
  for the tails, heartbeats, bounded retry, reconnects with
  exponential backoff and jitter, and local rescue of anything the
  fleet cannot finish;
* :mod:`~repro.distributed.executor` — a ``ProcessPoolExecutor``-shaped
  adapter so group-based code (``engine._evaluate_parallel``) runs
  against remote workers unchanged;
* :mod:`~repro.distributed.fabric` — fleet-scale rollout dispatch:
  update waves to 10k members on one event loop, with the threaded
  v2-architecture baseline kept for the benchmark.

Entry points: ``evaluate_corpus(workers=[...])`` /
``repro evaluate --workers`` on the coordinator side and
``repro worker --listen`` on the worker side.  Workers started with a
shared secret (``--secret`` / ``KSPLICE_WORKER_SECRET``) authenticate
peers with an HMAC challenge/response before deserializing anything;
without one the session still key-exchanges (unauthenticated DH) so
every data frame is encrypted either way.  ``--item-timeout`` bounds
each item's wall clock so one wedged CVE cannot hang a session, and
``--max-frame-mb`` bounds frame sizes (an oversize frame drops the
peer).
"""

from repro.distributed.aio import (
    AsyncChannel,
    accept_channel,
    connect_channel,
)

from repro.distributed.coordinator import Coordinator, WorkItem
from repro.distributed.executor import DistributedExecutor
from repro.distributed.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    SECRET_ENV,
    AuthError,
    MessageStream,
    ProtocolError,
    accept_stream,
    connect_stream,
    default_secret,
    parse_address,
    recv_message,
    send_message,
)
from repro.distributed.worker import (
    LocalWorker,
    serve,
    spawn_local_workers,
)

__all__ = [
    "AsyncChannel",
    "AuthError",
    "Coordinator",
    "DistributedExecutor",
    "LocalWorker",
    "MAX_FRAME",
    "MessageStream",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SECRET_ENV",
    "WorkItem",
    "accept_channel",
    "accept_stream",
    "connect_channel",
    "connect_stream",
    "default_secret",
    "parse_address",
    "recv_message",
    "send_message",
    "serve",
    "spawn_local_workers",
]

"""A ``ProcessPoolExecutor``-shaped surface over remote workers.

``DistributedExecutor`` fills exactly the contract the engine's local
parallel path uses today — ``submit`` returning
:class:`concurrent.futures.Future`, context-manager shutdown,
``as_completed`` compatibility — so it slots into
``engine._evaluate_parallel`` unchanged via its ``executor_factory``
hook.  The submitted callable must be ``_evaluate_group`` (or any
function taking one ``(version, specs, run_stress, verify_undo,
disk_root)`` payload); the *payload* is what crosses the wire, and the
remote worker runs the same evaluation the local pool would, returning
the same ``(results, cache_stats_delta)`` pair.

This is the compatibility tier of the fabric: whole version-groups,
one future each, results at group end.  The richer coordinator
(:mod:`repro.distributed.coordinator`) adds work-stealing, streaming,
and retry on top of the same wire protocol; the executor exists so
group-shaped code keeps working against remote hosts and so the
engine's fallback chain (distributed -> local pool -> sequential) has
a clean seam to test against.

A worker connection that dies fails its queued futures with
``BrokenExecutor`` — the exact exception the engine already treats as
"fall back locally".
"""

from __future__ import annotations

import queue
import socket
import threading
from concurrent.futures import BrokenExecutor, Future
from typing import Any, List, Optional, Sequence, Tuple

from repro.distributed import protocol
from repro.distributed.protocol import ProtocolError, parse_address


class _Link:
    """One worker connection draining a private queue of futures."""

    def __init__(self, address: Tuple[str, int],
                 connect_timeout: float):
        self.address = address
        self.sock = socket.create_connection(address,
                                             timeout=connect_timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock.settimeout(None)
        self.stream = protocol.connect_stream(self.sock,
                                              protocol.default_secret())
        from repro.compiler.cache import disk_cache_config

        self.stream.send({
            "type": protocol.HELLO,
            "version": protocol.PROTOCOL_VERSION,
            "disk_cache": disk_cache_config()})
        ready = self.stream.recv()
        if ready is None or ready.get("type") != protocol.READY:
            raise ProtocolError("worker %s:%d rejected the handshake"
                                % address)
        self.jobs: "queue.Queue[Optional[Tuple[Any, Future]]]" = \
            queue.Queue()
        self.thread = threading.Thread(target=self._drain, daemon=True)
        self.thread.start()

    def _drain(self) -> None:
        item_ids = iter(range(1 << 30))
        while True:
            job = self.jobs.get()
            if job is None:
                try:
                    self.stream.send({"type": protocol.SHUTDOWN})
                except (ConnectionError, ProtocolError, OSError):
                    pass
                return
            payload, future = job
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(self._round_trip(next(item_ids),
                                                   payload))
            except Exception as exc:
                future.set_exception(BrokenExecutor(
                    "worker %s:%d failed: %s"
                    % (self.address[0], self.address[1], exc)))
                self._fail_pending()
                return

    def _round_trip(self, item_id: int, payload: Any) -> Any:
        version, specs, run_stress, verify_undo, _disk_root = payload
        self.stream.send({
            "type": protocol.ITEM, "item_id": item_id,
            "version": version, "specs": specs,
            "run_stress": run_stress, "verify_undo": verify_undo})
        results: List[Any] = []
        while True:
            message = self.stream.recv()
            if message is None:
                raise ConnectionError("worker closed mid-item")
            kind = message.get("type")
            if kind == protocol.RESULT:
                results.append(message["result"])
            elif kind == protocol.ITEM_DONE:
                return results, message.get("cache_delta") or {}
            elif kind == protocol.ERROR:
                raise ProtocolError("remote evaluation failed:\n%s"
                                    % message.get("error"))

    def _fail_pending(self) -> None:
        while True:
            try:
                job = self.jobs.get_nowait()
            except queue.Empty:
                return
            if job is not None:
                job[1].set_exception(BrokenExecutor(
                    "worker %s:%d connection lost" % self.address))

    def close(self) -> None:
        self.jobs.put(None)
        self.thread.join(timeout=30.0)
        try:
            self.sock.close()
        except OSError:
            pass


class DistributedExecutor:
    """Round-robins group payloads over ``host:port`` workers.

    Raises :class:`BrokenExecutor` at construction when *no* worker is
    reachable, which the engine's parallel path already catches and
    turns into a local fallback.
    """

    def __init__(self, addresses: Sequence[str],
                 connect_timeout: float = 5.0):
        self._links: List[_Link] = []
        self._next = 0
        self._shutdown = False
        errors = []
        for address in addresses:
            try:
                self._links.append(_Link(parse_address(address),
                                         connect_timeout))
            except (ConnectionError, OSError, ProtocolError) as exc:
                errors.append("%s: %s" % (address, exc))
        if not self._links:
            raise BrokenExecutor("no workers reachable (%s)"
                                 % "; ".join(errors))

    @property
    def max_workers(self) -> int:
        return len(self._links)

    def submit(self, fn: Any, payload: Any, /) -> "Future":
        """Run one ``_evaluate_group``-shaped payload remotely.

        ``fn`` is accepted for surface compatibility with
        ``ProcessPoolExecutor.submit(fn, payload)``; the remote worker
        runs the evaluation loop itself, so ``fn`` never crosses the
        wire.
        """
        if self._shutdown:
            raise RuntimeError("cannot submit after shutdown")
        future: Future = Future()
        link = self._links[self._next % len(self._links)]
        self._next += 1
        link.jobs.put((payload, future))
        return future

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        self._shutdown = True
        for link in self._links:
            link.close()

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> Optional[bool]:
        self.shutdown()
        return None

"""Session crypto for the v3 fabric: handshake and encrypted frames.

The v2 handshake authenticated peers (HMAC challenge/response over a
shared secret) but every frame after it crossed the wire in cleartext.
v3 closes that gap: the handshake additionally agrees on per-session
keys, and **every post-handshake frame is encrypted and authenticated**
(encrypt-then-MAC) in both directions.

Two key-agreement modes, chosen by whether a secret is configured:

* **secret mode** — both sides prove the shared secret with the same
  domain-separated HMAC challenge/response as v2 (mutual: a client
  never sends work to an impostor worker), then derive session keys
  from ``HMAC(secret, nonces)``.  Two HMACs per connection — cheap
  enough for ten thousand fleet members handshaking in one rollout.
* **anonymous mode** (no secret on either side) — a classic
  finite-field Diffie-Hellman exchange over the RFC 3526 2048-bit MODP
  group.  Unauthenticated (the v2 trust model for open workers is
  unchanged: run them only where you would run the evaluation), but a
  passive observer on the wire now sees ciphertext, not pickled
  ``CveResult`` objects.  ~3 ms of ``pow()`` per side, paid once per
  connection.

The mode cannot be downgraded: a client configured with a secret
refuses any banner that is not secret mode (rather than silently
falling back to unauthenticated DH), and the banner's mode byte is
bound into every HMAC proof and into master-key derivation, so a MITM
rewriting it desynchronizes the two sides' keys and the key
confirmation fails.

Frame protection (:class:`FrameCipher`, one per direction):

* keystream — SHAKE-128 as an XOF in counter mode:
  ``shake_128(enc_key || seq).digest(len(frame))``; one C call per
  frame, several hundred MB/s;
* tag — ``HMAC-SHA256(mac_key, seq || ciphertext)`` truncated to 16
  bytes, checked with ``compare_digest`` before a single ciphertext
  byte is interpreted;
* ``seq`` — a per-direction 64-bit counter bound into both keystream
  and tag, so frames cannot be replayed, reordered, or reflected.

The handshake itself is a pure state machine over byte blobs
(:class:`ServerHandshake` / :class:`ClientHandshake`) so the blocking
socket layer and the asyncio layer drive the identical logic.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ReproError

#: raw handshake frames are small; anything bigger is an attack
MAX_HANDSHAKE_FRAME = 2048

NONCE_SIZE = 16
TAG_SIZE = 16
_DIGEST_SIZE = 32

MAGIC = b"KSP3"
MODE_ANON = 0
MODE_SECRET = 1

_SEQ = struct.Struct("!Q")

#: RFC 3526 group 14 (2048-bit MODP), generator 2
_DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16)
_DH_GENERATOR = 2
_DH_BYTES = 256

#: domain separation labels (v2's client/worker split, carried forward)
_CLIENT_DOMAIN = b"ksplice3-client:"
_WORKER_DOMAIN = b"ksplice3-worker:"
_MASTER_DOMAIN = b"ksplice3-master:"


class HandshakeError(ReproError):
    """The peer failed, refused, or mangled the v3 handshake."""


class FrameAuthError(ReproError):
    """A frame failed decryption/authentication mid-session."""


def _proof(secret: bytes, domain: bytes, mode: int,
           nonce: bytes) -> bytes:
    # The handshake mode byte is bound into every proof so a MITM
    # rewriting the banner's mode cannot splice two half-handshakes
    # into one session: mismatched modes produce mismatched proofs.
    return hmac.new(secret, domain + bytes([mode]) + nonce,
                    "sha256").digest()


def _derive(master: bytes, label: bytes) -> bytes:
    return hmac.new(master, label, "sha256").digest()


@dataclass
class SessionKeys:
    """Directional keys for one session (client/worker perspective
    agnostic: ``c2w`` always means client-to-worker)."""

    c2w_enc: bytes
    c2w_mac: bytes
    w2c_enc: bytes
    w2c_mac: bytes
    #: True when the peer proved knowledge of the shared secret
    authenticated: bool = False

    @classmethod
    def from_master(cls, master: bytes,
                    authenticated: bool) -> "SessionKeys":
        return cls(
            c2w_enc=_derive(master, b"c2w-enc"),
            c2w_mac=_derive(master, b"c2w-mac"),
            w2c_enc=_derive(master, b"w2c-enc"),
            w2c_mac=_derive(master, b"w2c-mac"),
            authenticated=authenticated,
        )


def _master_from_secret(secret: bytes, mode: int, worker_nonce: bytes,
                        client_nonce: bytes) -> bytes:
    return hmac.new(secret,
                    _MASTER_DOMAIN + bytes([mode]) + worker_nonce
                    + client_nonce,
                    "sha256").digest()


def _master_from_dh(shared: int, mode: int, worker_nonce: bytes,
                    client_nonce: bytes) -> bytes:
    shared_bytes = shared.to_bytes(_DH_BYTES, "big")
    return hmac.new(shared_bytes,
                    _MASTER_DOMAIN + bytes([mode]) + worker_nonce
                    + client_nonce,
                    "sha256").digest()


def _dh_keypair() -> Tuple[int, bytes]:
    exponent = int.from_bytes(os.urandom(32), "big")
    public = pow(_DH_GENERATOR, exponent, _DH_PRIME)
    return exponent, public.to_bytes(_DH_BYTES, "big")


def _dh_shared(exponent: int, peer_public: bytes) -> int:
    peer = int.from_bytes(peer_public, "big")
    if not 2 <= peer <= _DH_PRIME - 2:
        raise HandshakeError("degenerate DH public value from peer")
    return pow(peer, exponent, _DH_PRIME)


class FrameCipher:
    """Encrypt-then-MAC for one direction of one session."""

    def __init__(self, enc_key: bytes, mac_key: bytes):
        self._enc_key = enc_key
        self._seq = 0
        # hmac.new() re-hashes the key every call; keying once and
        # .copy()-ing per frame keeps the per-frame MAC cost to the
        # two compression blocks that actually cover the data.  This
        # is the fabric's hottest code: 2 seals + 2 opens per
        # member-update at 10k-member scale.
        self._mac = hmac.new(mac_key, digestmod="sha256")
        self._shake = hashlib.shake_128(enc_key)

    def _keystream(self, seq: bytes, length: int) -> bytes:
        xof = self._shake.copy()
        xof.update(seq)
        return xof.digest(length)

    def _tag(self, seq: bytes, ciphertext: bytes) -> bytes:
        mac = self._mac.copy()
        mac.update(seq)
        mac.update(ciphertext)
        return mac.digest()[:TAG_SIZE]

    def seal(self, plaintext: bytes) -> bytes:
        seq = _SEQ.pack(self._seq)
        self._seq += 1
        keystream = self._keystream(seq, len(plaintext))
        ciphertext = (int.from_bytes(plaintext, "little")
                      ^ int.from_bytes(keystream, "little")
                      ).to_bytes(len(plaintext), "little")
        return ciphertext + self._tag(seq, ciphertext)

    def open(self, record: bytes) -> bytes:
        if len(record) < TAG_SIZE:
            raise FrameAuthError("sealed frame shorter than its tag")
        seq = _SEQ.pack(self._seq)
        ciphertext, tag = record[:-TAG_SIZE], record[-TAG_SIZE:]
        if not hmac.compare_digest(tag, self._tag(seq, ciphertext)):
            raise FrameAuthError(
                "frame %d failed authentication (tampered, replayed, "
                "or out of order)" % self._seq)
        self._seq += 1
        keystream = self._keystream(seq, len(ciphertext))
        return (int.from_bytes(ciphertext, "little")
                ^ int.from_bytes(keystream, "little")
                ).to_bytes(len(ciphertext), "little")


@dataclass
class CipherPair:
    """What a finished handshake hands the session layer."""

    tx: FrameCipher
    rx: FrameCipher
    authenticated: bool


def _pair_for(keys: SessionKeys, side: str) -> CipherPair:
    if side == "client":
        return CipherPair(
            tx=FrameCipher(keys.c2w_enc, keys.c2w_mac),
            rx=FrameCipher(keys.w2c_enc, keys.w2c_mac),
            authenticated=keys.authenticated)
    return CipherPair(
        tx=FrameCipher(keys.w2c_enc, keys.w2c_mac),
        rx=FrameCipher(keys.c2w_enc, keys.c2w_mac),
        authenticated=keys.authenticated)


class ServerHandshake:
    """Worker side: emit the banner, verify the response, confirm.

    Drive it::

        hs = ServerHandshake(secret)
        send_raw(hs.banner())
        confirm = hs.verify(recv_raw())   # raises HandshakeError
        send_raw(confirm)
        pair = hs.ciphers()
    """

    def __init__(self, secret: Optional[bytes]):
        self._secret = secret
        self._worker_nonce = os.urandom(NONCE_SIZE)
        self._mode = MODE_SECRET if secret else MODE_ANON
        self._dh_exponent: Optional[int] = None
        self._dh_public = b""
        if self._mode == MODE_ANON:
            self._dh_exponent, self._dh_public = _dh_keypair()
        self._keys: Optional[SessionKeys] = None

    def banner(self) -> bytes:
        return (MAGIC + bytes([self._mode]) + self._worker_nonce
                + self._dh_public)

    def verify(self, response: bytes) -> bytes:
        """Check the client response; returns the confirm frame."""
        if response[:4] != MAGIC:
            raise HandshakeError(
                "peer did not answer a v3 handshake (got %r...); a v2 "
                "coordinator must be upgraded to v3" % response[:8])
        if len(response) < 5 or response[4] != self._mode:
            raise HandshakeError("peer answered handshake mode %r, "
                                 "expected %d"
                                 % (response[4:5], self._mode))
        rest = response[5:]
        if len(rest) < NONCE_SIZE:
            raise HandshakeError("malformed handshake response (%d "
                                 "bytes)" % len(response))
        client_nonce, rest = rest[:NONCE_SIZE], rest[NONCE_SIZE:]
        if self._mode == MODE_SECRET:
            assert self._secret is not None
            if len(rest) != _DIGEST_SIZE:
                raise HandshakeError("malformed auth response (%d "
                                     "bytes)" % len(response))
            expected = _proof(self._secret, _CLIENT_DOMAIN, self._mode,
                              self._worker_nonce + client_nonce)
            if not hmac.compare_digest(rest, expected):
                raise HandshakeError(
                    "client failed the shared-secret challenge")
            master = _master_from_secret(self._secret, self._mode,
                                         self._worker_nonce,
                                         client_nonce)
            self._keys = SessionKeys.from_master(master,
                                                 authenticated=True)
            return _proof(self._secret, _WORKER_DOMAIN, self._mode,
                          client_nonce + self._worker_nonce)
        if len(rest) != _DH_BYTES:
            raise HandshakeError("malformed DH response (%d bytes)"
                                 % len(response))
        assert self._dh_exponent is not None
        shared = _dh_shared(self._dh_exponent, rest)
        master = _master_from_dh(shared, self._mode, self._worker_nonce,
                                 client_nonce)
        self._keys = SessionKeys.from_master(master, authenticated=False)
        # prove we computed the same keys before any frame flows
        return _derive(master, b"worker-confirm")

    def ciphers(self) -> CipherPair:
        assert self._keys is not None, "verify() must succeed first"
        return _pair_for(self._keys, "worker")


class ClientHandshake:
    """Coordinator side: answer the banner, verify the confirm.

    Drive it::

        hs = ClientHandshake(secret)
        send_raw(hs.respond(recv_raw()))  # raises HandshakeError
        hs.verify(recv_raw())             # raises HandshakeError
        pair = hs.ciphers()
    """

    def __init__(self, secret: Optional[bytes]):
        self._secret = secret
        self._client_nonce = os.urandom(NONCE_SIZE)
        self._keys: Optional[SessionKeys] = None
        self._expected_confirm = b""
        self._mode = MODE_ANON

    def respond(self, banner: bytes) -> bytes:
        if banner[:4] != MAGIC:
            raise HandshakeError(
                "worker speaks fabric protocol v2 or older (banner "
                "%r...); v3 required — upgrade the worker" % banner[:8])
        if len(banner) < 5 + NONCE_SIZE:
            raise HandshakeError("malformed v3 banner (%d bytes)"
                                 % len(banner))
        self._mode = banner[4]
        worker_nonce = banner[5:5 + NONCE_SIZE]
        rest = banner[5 + NONCE_SIZE:]
        if self._secret is not None and self._mode != MODE_SECRET:
            # Downgrade refusal: when this side is configured with a
            # secret, an unauthenticated banner means either a
            # misconfigured worker or an impostor/MITM stripping the
            # mode byte to dodge the challenge.  Never fall back to
            # anonymous DH — that would send work to a peer that never
            # proved anything.
            raise HandshakeError(
                "authentication downgrade refused: a shared secret is "
                "configured but the worker offered an unauthenticated "
                "(mode %d) handshake; start the worker with the same "
                "--secret / KSPLICE_WORKER_SECRET" % self._mode)
        if self._mode == MODE_SECRET:
            if self._secret is None:
                raise HandshakeError(
                    "worker requires a shared secret; pass --secret or "
                    "set KSPLICE_WORKER_SECRET")
            proof = _proof(self._secret, _CLIENT_DOMAIN, self._mode,
                           worker_nonce + self._client_nonce)
            master = _master_from_secret(self._secret, self._mode,
                                         worker_nonce,
                                         self._client_nonce)
            self._keys = SessionKeys.from_master(master,
                                                 authenticated=True)
            self._expected_confirm = _proof(
                self._secret, _WORKER_DOMAIN, self._mode,
                self._client_nonce + worker_nonce)
            return (MAGIC + bytes([MODE_SECRET]) + self._client_nonce
                    + proof)
        if self._mode != MODE_ANON:
            raise HandshakeError("unknown handshake mode %d"
                                 % self._mode)
        if len(rest) != _DH_BYTES:
            raise HandshakeError("malformed DH banner (%d bytes)"
                                 % len(banner))
        exponent, public = _dh_keypair()
        shared = _dh_shared(exponent, rest)
        master = _master_from_dh(shared, self._mode, worker_nonce,
                                 self._client_nonce)
        self._keys = SessionKeys.from_master(master, authenticated=False)
        self._expected_confirm = _derive(master, b"worker-confirm")
        return MAGIC + bytes([MODE_ANON]) + self._client_nonce + public

    def verify(self, confirm: bytes) -> None:
        if not hmac.compare_digest(confirm, self._expected_confirm):
            if self._mode == MODE_SECRET:
                raise HandshakeError(
                    "worker failed to prove the shared secret")
            raise HandshakeError("worker failed the key confirmation")

    def ciphers(self) -> CipherPair:
        assert self._keys is not None, "verify() must succeed first"
        return _pair_for(self._keys, "client")

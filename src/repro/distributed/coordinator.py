"""The coordinator: schedules work items over remote workers.

Scheduling model
----------------

Work starts as one **lead item** per kernel version (the version's
first CVE in spec order).  The lead's evaluation warms that version's
run-build cache entry on whichever worker runs it — and, when a shared
disk tier is enabled, for every other worker too.  The moment a
version's lead CVE has a result, the version's remaining CVEs are
released as independent single-CVE items into the shared ready queue,
where **any idle worker steals the next one**.  That removes the local
pool's ``min(jobs, len(groups))`` cap: a version with twenty CVEs no
longer serializes its tail behind one worker, because after the first
CVE the other nineteen are up for grabs.

Streaming
---------

Workers push each finished ``CveResult`` (trace included) the moment
it exists, so the caller's ``progress`` callback fires per CVE in
completion order — distributed runs report exactly like sequential
ones, not in per-group bursts.

Failure model
-------------

* **Heartbeats** — while an item is in flight the coordinator pings the
  worker whenever the connection goes quiet; a worker that misses
  several consecutive probes is declared lost.  A killed worker is
  usually detected faster, by the TCP reset.
* **Bounded retry with backoff** — an item lost with a worker (or
  failed remotely) is requeued for the CVEs that have no result yet,
  with exponentially backed-off not-before times, up to
  ``max_attempts`` total tries; only then is it abandoned remotely.
* **Graceful degradation** — abandoned items, or everything left when
  every worker has died, are evaluated in-process by the coordinator
  (``local_rescues``); results stay complete and deterministic.  If
  *no* worker ever answered the handshake, ``run`` returns ``None``
  and the engine falls back to the local pool exactly like the
  existing unpicklable-spec path.

Cache accounting mirrors ``engine._evaluate_group``: each item returns
its per-cache stats delta, merged per worker into ``stats.caches``.
"""

from __future__ import annotations

import itertools
import pickle
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.distributed import protocol
from repro.distributed.protocol import ProtocolError, parse_address


@dataclass
class WorkItem:
    """One schedulable unit: a kernel version plus spec indices."""

    item_id: str
    version: str
    indices: List[int]
    specs: List[Any]
    #: lead item of its version: completing it releases the parked tail
    warm: bool = False
    attempts: int = 0


@dataclass
class _RunState:
    """Everything the scheduler guards under one lock."""

    results: List[Optional[Any]]
    ready: "deque[WorkItem]" = field(default_factory=deque)
    retry: List[Tuple[float, WorkItem]] = field(default_factory=list)
    #: version -> indices waiting for that version's lead to complete
    parked: Dict[str, List[int]] = field(default_factory=dict)
    inflight: Dict[int, WorkItem] = field(default_factory=dict)
    released: Dict[str, bool] = field(default_factory=dict)
    connected: int = 0
    handlers_running: int = 0
    dispatched: int = 0
    retries: int = 0


class Coordinator:
    """Runs one corpus evaluation over a set of ``host:port`` workers."""

    def __init__(self, addresses: Sequence[str],
                 connect_timeout: float = 5.0,
                 heartbeat_interval: float = 2.0,
                 heartbeat_misses: int = 3,
                 max_attempts: int = 3,
                 retry_backoff: float = 0.05):
        self.addresses = [parse_address(a) for a in addresses]
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._progress_lock = threading.Lock()
        self._ids = itertools.count()

    # -- public entry point -------------------------------------------------

    def run(self, specs: Sequence[Any], run_stress: bool = True,
            verify_undo: bool = False, progress=None,
            stats=None) -> Optional[List[Any]]:
        """Evaluate ``specs`` over the workers; None means "fall back".

        Returns the results in spec order, or ``None`` when the specs
        cannot cross a process boundary or no worker answered — the
        same contract as the engine's local parallel path.
        """
        try:
            pickle.dumps(list(specs))
        except Exception:
            if stats is not None:
                stats.fallback_reason = "unpicklable specs"
            return None

        state = self._build_state(specs)
        self._specs = list(specs)
        self._run_stress = run_stress
        self._verify_undo = verify_undo
        self._progress = progress
        self._stats = stats
        self._state = state

        threads = []
        with self._cond:
            state.handlers_running = len(self.addresses)
        for host, port in self.addresses:
            thread = threading.Thread(target=self._handler,
                                      args=(host, port), daemon=True)
            thread.start()
            threads.append(thread)

        with self._cond:
            while not self._all_filled(state) \
                    and state.handlers_running > 0 \
                    and self._remote_pending(state):
                self._cond.wait(0.2)
            connected = state.connected
        missing = [i for i, r in enumerate(state.results) if r is None]
        if missing and connected == 0:
            with self._cond:  # unblock any handler still connecting
                state.ready.clear()
                state.retry.clear()
                state.parked.clear()
                self._cond.notify_all()
            if stats is not None and not stats.fallback_reason:
                stats.fallback_reason = (
                    "no workers reachable at %s"
                    % ", ".join("%s:%d" % a for a in self.addresses))
            return None
        if missing:
            self._rescue_locally(missing)
        for thread in threads:
            thread.join(timeout=30.0)
        if stats is not None:
            stats.workers = connected
            stats.work_items = state.dispatched
            stats.retries = state.retries
        return list(state.results)  # type: ignore[arg-type]

    # -- scheduling ---------------------------------------------------------

    def _build_state(self, specs: Sequence[Any]) -> _RunState:
        from repro.evaluation.engine import _group_by_version

        state = _RunState(results=[None] * len(specs))
        for version, indices in _group_by_version(specs):
            lead, rest = indices[0], indices[1:]
            state.ready.append(WorkItem(
                item_id="i%d" % next(self._ids), version=version,
                indices=[lead], specs=[specs[lead]], warm=True))
            if rest:
                state.parked[version] = rest
            state.released[version] = not rest
        return state

    def _all_filled(self, state: _RunState) -> bool:
        return all(r is not None for r in state.results)

    def _remote_pending(self, state: _RunState) -> bool:
        return bool(state.ready or state.retry or state.parked
                    or state.inflight)

    def _release_parked(self, state: _RunState, version: str) -> None:
        """Split a version's tail into stealable single-CVE items."""
        if state.released.get(version):
            return
        state.released[version] = True
        for index in state.parked.pop(version, []):
            state.ready.append(WorkItem(
                item_id="i%d" % next(self._ids), version=version,
                indices=[index], specs=[self._specs[index]]))
        self._cond.notify_all()

    def _next_item(self, handler_id: int) -> Optional[WorkItem]:
        with self._cond:
            state = self._state
            while True:
                if self._all_filled(state):
                    return None
                now = time.monotonic()
                due = [entry for entry in state.retry if entry[0] <= now]
                for entry in due:
                    state.retry.remove(entry)
                    state.ready.append(entry[1])
                if state.ready:
                    item = state.ready.popleft()
                    state.inflight[handler_id] = item
                    state.dispatched += 1
                    return item
                if not state.retry and not state.inflight and state.parked:
                    # Safety valve: every lead for these versions was
                    # abandoned — release the tails rather than stall.
                    for version in list(state.parked):
                        self._release_parked(state, version)
                    continue
                if not self._remote_pending(state):
                    return None
                timeout = 0.2
                if state.retry:
                    timeout = min(timeout, max(
                        0.01, min(t for t, _ in state.retry) - now))
                self._cond.wait(timeout)

    def _record_result(self, item: WorkItem, offset: int,
                       result: Any) -> None:
        fresh = False
        with self._cond:
            state = self._state
            index = item.indices[offset]
            if state.results[index] is None:
                state.results[index] = result
                fresh = True
            if item.warm:
                self._release_parked(state, item.version)
            self._cond.notify_all()
        if fresh and self._progress is not None:
            with self._progress_lock:
                self._progress(result)

    def _finish_item(self, handler_id: int, item: WorkItem,
                     cache_delta: Optional[Dict[str, Any]],
                     failed: bool) -> None:
        from repro.compiler.cache import merge_stats_into

        with self._cond:
            state = self._state
            state.inflight.pop(handler_id, None)
            if cache_delta and self._stats is not None:
                merge_stats_into(self._stats.caches, cache_delta)
            missing = [i for i in item.indices
                       if state.results[i] is None]
            if missing:
                attempts = item.attempts + 1
                if attempts < self.max_attempts:
                    retry_item = WorkItem(
                        item_id="i%d" % next(self._ids),
                        version=item.version, indices=missing,
                        specs=[self._specs[i] for i in missing],
                        warm=item.warm, attempts=attempts)
                    not_before = time.monotonic() \
                        + self.retry_backoff * (2 ** (attempts - 1))
                    state.retry.append((not_before, retry_item))
                    state.retries += 1
                elif item.warm:
                    # The lead is a lost cause remotely; don't hold the
                    # version's tail hostage.
                    self._release_parked(state, item.version)
            elif item.warm:
                self._release_parked(state, item.version)
            self._cond.notify_all()

    # -- per-worker handler thread ------------------------------------------

    def _handler(self, host: str, port: int) -> None:
        sock: Optional[socket.socket] = None
        try:
            sock = self._connect(host, port)
            with self._cond:
                self._state.connected += 1
                self._cond.notify_all()
            self._serve_worker(sock)
        except (ConnectionError, OSError, ProtocolError):
            pass
        finally:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
            with self._cond:
                state = self._state
                item = state.inflight.pop(id(threading.current_thread()),
                                          None)
                state.handlers_running -= 1
                self._cond.notify_all()
            if item is not None:
                self._finish_item(-1, item, None, failed=True)

    def _connect(self, host: str, port: int) -> socket.socket:
        sock = socket.create_connection((host, port),
                                        timeout=self.connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        protocol.worker_auth_connect(sock, protocol.default_secret())
        from repro.compiler.cache import disk_cache_config

        protocol.send_message(sock, {
            "type": protocol.HELLO,
            "version": protocol.PROTOCOL_VERSION,
            "disk_cache": disk_cache_config()})
        ready = protocol.recv_message(sock)
        if ready is None or ready.get("type") != protocol.READY:
            raise ProtocolError(
                "worker %s:%d rejected the handshake: %r"
                % (host, port,
                   (ready or {}).get("error", "connection closed")))
        return sock

    def _serve_worker(self, sock: socket.socket) -> None:
        handler_id = id(threading.current_thread())
        stream = protocol.MessageStream(sock)
        while True:
            item = self._next_item(handler_id)
            if item is None:
                try:
                    protocol.send_message(sock,
                                          {"type": protocol.SHUTDOWN})
                except (ConnectionError, OSError):
                    pass
                return
            try:
                self._run_item(sock, stream, handler_id, item)
            except (ConnectionError, OSError, ProtocolError):
                self._finish_item(handler_id, item, None, failed=True)
                raise

    def _run_item(self, sock: socket.socket,
                  stream: "protocol.MessageStream", handler_id: int,
                  item: WorkItem) -> None:
        protocol.send_message(sock, {
            "type": protocol.ITEM, "item_id": item.item_id,
            "version": item.version, "specs": item.specs,
            "run_stress": self._run_stress,
            "verify_undo": self._verify_undo})
        sock.settimeout(self.heartbeat_interval)
        missed = 0
        ping_seq = 0
        while True:
            try:
                message = stream.recv()
            except socket.timeout:
                if missed >= self.heartbeat_misses:
                    raise ConnectionError(
                        "worker missed %d heartbeats" % missed)
                ping_seq += 1
                protocol.send_message(sock, {"type": protocol.PING,
                                             "seq": ping_seq})
                missed += 1
                continue
            if message is None:
                raise ConnectionError("worker closed mid-item")
            missed = 0
            kind = message.get("type")
            if kind == protocol.RESULT \
                    and message.get("item_id") == item.item_id:
                self._record_result(item, message["offset"],
                                    message["result"])
            elif kind == protocol.ITEM_DONE \
                    and message.get("item_id") == item.item_id:
                self._finish_item(handler_id, item,
                                  message.get("cache_delta"),
                                  failed=False)
                return
            elif kind == protocol.ERROR:
                self._finish_item(handler_id, item, None, failed=True)
                return
            # pongs and stale-item noise just prove liveness

    # -- local degradation --------------------------------------------------

    def _rescue_locally(self, missing: List[int]) -> None:
        """Evaluate leftover indices in-process (workers all gone or
        retries exhausted); accounting lands in the same stats."""
        from repro.compiler.cache import (
            merge_stats_into,
            snapshot_stats,
            stats_delta,
        )
        from repro.evaluation.harness import evaluate_cve

        before = snapshot_stats()
        for index in sorted(missing):
            result = evaluate_cve(self._specs[index],
                                  run_stress=self._run_stress,
                                  verify_undo=self._verify_undo)
            with self._cond:
                if self._state.results[index] is not None:
                    continue  # a straggler worker beat us to it
                self._state.results[index] = result
            if self._progress is not None:
                with self._progress_lock:
                    self._progress(result)
            if self._stats is not None:
                self._stats.local_rescues += 1
        if self._stats is not None:
            merge_stats_into(self._stats.caches, stats_delta(before))

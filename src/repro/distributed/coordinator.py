"""The coordinator: one event loop scheduling items over many workers.

Scheduling model
----------------

Work starts as one **lead item** per kernel version (the version's
first CVE in spec order).  The lead's evaluation warms that version's
run-build cache entry on whichever worker runs it — and, when a shared
disk tier is enabled, for every other worker too.  The moment a
version's lead CVE has a result, the version's remaining CVEs are
released as independent single-CVE items into the shared ready queue,
where **any idle worker steals the next one**.  That removes the local
pool's ``min(jobs, len(groups))`` cap: a version with twenty CVEs no
longer serializes its tail behind one worker, because after the first
CVE the other nineteen are up for grabs.

Concurrency model
-----------------

v2 spent one OS thread per worker; v3 runs **every peer as a task on
one asyncio event loop** — the scheduler state needs no locks at all,
because every mutation happens on the loop.  ``run()`` keeps its
synchronous signature (it owns ``asyncio.run``), so engine callers are
untouched.  Each peer connection is an
:class:`~repro.distributed.aio.AsyncChannel` with bounded send/receive
queues: a slow worker parks its producer instead of ballooning
coordinator memory.

Streaming
---------

Workers push each finished ``CveResult`` (trace included) the moment
it exists, so the caller's ``progress`` callback fires per CVE in
completion order — distributed runs report exactly like sequential
ones, not in per-group bursts.

Failure model
-------------

* **Heartbeats** — while an item is in flight the coordinator pings the
  worker whenever the connection goes quiet; a worker that misses
  several consecutive probes is declared lost.  A killed worker is
  usually detected faster, by the TCP reset.
* **Reconnect with backoff + jitter** — a refused or dropped connection
  is retried up to ``reconnect_attempts`` times per peer, with
  exponentially growing, jittered delays (jitter decorrelates a fleet
  of coordinators hammering a recovering worker).  Reconnect counts
  are surfaced per peer in ``EngineStats``.
* **Bounded retry with backoff** — an item lost with a worker (or
  failed remotely) is requeued for the CVEs that have no result yet,
  with exponentially backed-off not-before times, up to
  ``max_attempts`` total tries; only then is it abandoned remotely.
* **Graceful degradation** — abandoned items, or everything left when
  every worker has died, are evaluated in-process by the coordinator
  (``local_rescues``); results stay complete and deterministic.  If
  *no* worker ever answered the handshake, ``run`` returns ``None``
  and the engine falls back to the local pool exactly like the
  unserializable-spec path.

Cache accounting mirrors ``engine._evaluate_group``: each item returns
its per-cache stats delta, merged per worker into ``stats.caches``.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.distributed import aio, protocol
from repro.distributed.aio import AsyncChannel
from repro.distributed.protocol import (
    MAX_FRAME,
    AuthError,
    ProtocolError,
    parse_address,
)


@dataclass
class WorkItem:
    """One schedulable unit: a kernel version plus spec indices."""

    item_id: str
    version: str
    indices: List[int]
    specs: List[Any]
    #: lead item of its version: completing it releases the parked tail
    warm: bool = False
    attempts: int = 0


@dataclass
class _RunState:
    """The scheduler's state — loop-confined, so no locks."""

    results: List[Optional[Any]]
    ready: "deque[WorkItem]" = field(default_factory=deque)
    retry: List[Tuple[float, WorkItem]] = field(default_factory=list)
    #: version -> indices waiting for that version's lead to complete
    parked: Dict[str, List[int]] = field(default_factory=dict)
    inflight: Dict[int, WorkItem] = field(default_factory=dict)
    released: Dict[str, bool] = field(default_factory=dict)
    connected: int = 0
    handlers_running: int = 0
    dispatched: int = 0
    retries: int = 0
    reconnects: int = 0
    reconnects_by_peer: Dict[str, int] = field(default_factory=dict)


class Coordinator:
    """Runs one corpus evaluation over a set of ``host:port`` workers."""

    def __init__(self, addresses: Sequence[str],
                 connect_timeout: float = 5.0,
                 heartbeat_interval: float = 2.0,
                 heartbeat_misses: int = 3,
                 max_attempts: int = 3,
                 retry_backoff: float = 0.05,
                 reconnect_attempts: int = 3,
                 reconnect_backoff: float = 0.1,
                 max_frame: int = MAX_FRAME):
        self.addresses = [parse_address(a) for a in addresses]
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff = reconnect_backoff
        self.max_frame = max_frame
        self._ids = itertools.count()
        self._wake: Optional[asyncio.Event] = None

    # -- public entry point -------------------------------------------------

    def run(self, specs: Sequence[Any], run_stress: bool = True,
            verify_undo: bool = False, progress=None,
            stats=None) -> Optional[List[Any]]:
        """Evaluate ``specs`` over the workers; None means "fall back".

        Returns the results in spec order, or ``None`` when the specs
        cannot cross the wire or no worker answered — the same contract
        as the engine's local parallel path.
        """
        ok, _reason = protocol.encodable(list(specs))
        if not ok:
            if stats is not None:
                stats.fallback_reason = "unserializable specs"
            return None

        state = self._build_state(specs)
        self._specs = list(specs)
        self._run_stress = run_stress
        self._verify_undo = verify_undo
        self._progress = progress
        self._stats = stats
        self._state = state

        asyncio.run(self._run_async())

        missing = [i for i, r in enumerate(state.results) if r is None]
        if missing and state.connected == 0:
            if stats is not None and not stats.fallback_reason:
                stats.fallback_reason = (
                    "no workers reachable at %s"
                    % ", ".join("%s:%d" % a for a in self.addresses))
            return None
        if missing:
            self._rescue_locally(missing)
        if stats is not None:
            stats.workers = state.connected
            stats.work_items = state.dispatched
            stats.retries = state.retries
            stats.reconnects = state.reconnects
            stats.reconnects_by_peer = dict(state.reconnects_by_peer)
        return list(state.results)  # type: ignore[arg-type]

    # -- the event loop -----------------------------------------------------

    async def _run_async(self) -> None:
        state = self._state
        self._wake = asyncio.Event()
        state.handlers_running = len(self.addresses)
        tasks = [asyncio.get_running_loop().create_task(
            self._peer(peer_id, host, port))
            for peer_id, (host, port) in enumerate(self.addresses)]
        while not self._all_filled(state) \
                and state.handlers_running > 0 \
                and self._remote_pending(state):
            await self._wait_wake(0.2)
        # Work is done (or undoable remotely): flush the queues so
        # peers mid-backoff or mid-_next_item see nothing pending and
        # exit; stragglers are cancelled after a grace period.
        state.ready.clear()
        state.retry.clear()
        state.parked.clear()
        self._wake.set()
        if tasks:
            await asyncio.wait(tasks, timeout=30.0)
        for task in tasks:
            task.cancel()

    async def _wait_wake(self, timeout: float) -> None:
        wake = self._wake
        assert wake is not None
        wake.clear()
        try:
            await asyncio.wait_for(wake.wait(), timeout)
        except asyncio.TimeoutError:
            pass

    def _notify(self) -> None:
        if self._wake is not None:
            self._wake.set()

    # -- scheduling ---------------------------------------------------------

    def _build_state(self, specs: Sequence[Any]) -> _RunState:
        from repro.evaluation.engine import _group_by_version

        state = _RunState(results=[None] * len(specs))
        for version, indices in _group_by_version(specs):
            lead, rest = indices[0], indices[1:]
            state.ready.append(WorkItem(
                item_id="i%d" % next(self._ids), version=version,
                indices=[lead], specs=[specs[lead]], warm=True))
            if rest:
                state.parked[version] = rest
            state.released[version] = not rest
        return state

    def _all_filled(self, state: _RunState) -> bool:
        return all(r is not None for r in state.results)

    def _remote_pending(self, state: _RunState) -> bool:
        return bool(state.ready or state.retry or state.parked
                    or state.inflight)

    def _release_parked(self, state: _RunState, version: str) -> None:
        """Split a version's tail into stealable single-CVE items."""
        if state.released.get(version):
            return
        state.released[version] = True
        for index in state.parked.pop(version, []):
            state.ready.append(WorkItem(
                item_id="i%d" % next(self._ids), version=version,
                indices=[index], specs=[self._specs[index]]))
        self._notify()

    async def _next_item(self, peer_id: int) -> Optional[WorkItem]:
        state = self._state
        while True:
            if self._all_filled(state):
                return None
            now = time.monotonic()
            due = [entry for entry in state.retry if entry[0] <= now]
            for entry in due:
                state.retry.remove(entry)
                state.ready.append(entry[1])
            if state.ready:
                item = state.ready.popleft()
                state.inflight[peer_id] = item
                state.dispatched += 1
                return item
            if not state.retry and not state.inflight and state.parked:
                # Safety valve: every lead for these versions was
                # abandoned — release the tails rather than stall.
                for version in list(state.parked):
                    self._release_parked(state, version)
                continue
            if not self._remote_pending(state):
                return None
            timeout = 0.2
            if state.retry:
                timeout = min(timeout, max(
                    0.01, min(t for t, _ in state.retry) - now))
            await self._wait_wake(timeout)

    def _record_result(self, item: WorkItem, offset: int,
                       result: Any) -> None:
        state = self._state
        index = item.indices[offset]
        fresh = state.results[index] is None
        if fresh:
            state.results[index] = result
        if item.warm:
            self._release_parked(state, item.version)
        self._notify()
        if fresh and self._progress is not None:
            self._progress(result)

    def _finish_item(self, peer_id: int, item: WorkItem,
                     cache_delta: Optional[Dict[str, Any]],
                     failed: bool) -> None:
        from repro.compiler.cache import merge_stats_into

        state = self._state
        state.inflight.pop(peer_id, None)
        if cache_delta and self._stats is not None:
            merge_stats_into(self._stats.caches, cache_delta)
        missing = [i for i in item.indices if state.results[i] is None]
        if missing:
            attempts = item.attempts + 1
            if attempts < self.max_attempts:
                retry_item = WorkItem(
                    item_id="i%d" % next(self._ids),
                    version=item.version, indices=missing,
                    specs=[self._specs[i] for i in missing],
                    warm=item.warm, attempts=attempts)
                not_before = time.monotonic() \
                    + self.retry_backoff * (2 ** (attempts - 1))
                state.retry.append((not_before, retry_item))
                state.retries += 1
            elif item.warm:
                # The lead is a lost cause remotely; don't hold the
                # version's tail hostage.
                self._release_parked(state, item.version)
        elif item.warm:
            self._release_parked(state, item.version)
        self._notify()

    # -- per-worker peer task -----------------------------------------------

    async def _peer(self, peer_id: int, host: str, port: int) -> None:
        """Connect, serve, and reconnect (bounded, jittered backoff)."""
        state = self._state
        label = "%s:%d" % (host, port)
        ever_connected = False
        reconnects_used = 0
        try:
            while True:
                if self._all_filled(state) \
                        or not self._remote_pending(state):
                    return
                try:
                    channel = await self._connect(host, port)
                except (AuthError, ProtocolError):
                    return  # a secret mismatch won't fix itself
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    if not await self._backoff(label, reconnects_used):
                        return
                    reconnects_used += 1
                    continue
                if not ever_connected:
                    ever_connected = True
                    state.connected += 1
                    self._notify()
                try:
                    await self._serve_worker(peer_id, channel)
                    return
                except (ConnectionError, OSError, ProtocolError):
                    item = state.inflight.pop(peer_id, None)
                    if item is not None:
                        self._finish_item(peer_id, item, None,
                                          failed=True)
                    if not await self._backoff(label, reconnects_used):
                        return
                    reconnects_used += 1
                finally:
                    await channel.close()
        finally:
            item = state.inflight.pop(peer_id, None)
            state.handlers_running -= 1
            self._notify()
            if item is not None:
                self._finish_item(peer_id, item, None, failed=True)

    async def _backoff(self, label: str, used: int) -> bool:
        """Count one reconnect and sleep its jittered delay.

        ``False`` when the peer's reconnect budget is exhausted or the
        run no longer needs workers.  The jitter (up to half the base
        delay) decorrelates simultaneous reconnects.
        """
        state = self._state
        if used >= self.reconnect_attempts:
            return False
        state.reconnects += 1
        state.reconnects_by_peer[label] = \
            state.reconnects_by_peer.get(label, 0) + 1
        delay = self.reconnect_backoff * (2 ** used)
        delay += random.uniform(0, delay / 2)
        deadline = time.monotonic() + delay
        while True:
            if self._all_filled(state) \
                    or not self._remote_pending(state):
                return False
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return True
            await self._wait_wake(min(remaining, 0.2))

    async def _connect(self, host: str, port: int) -> AsyncChannel:
        channel = await aio.connect_channel(
            host, port, protocol.default_secret(),
            max_frame=self.max_frame,
            connect_timeout=self.connect_timeout)
        from repro.compiler.cache import disk_cache_config

        try:
            await channel.send({
                "type": protocol.HELLO,
                "version": protocol.PROTOCOL_VERSION,
                "disk_cache": disk_cache_config()})
            ready = await channel.recv()
        except (ConnectionError, OSError, ProtocolError):
            await channel.close()
            raise
        if ready is None or ready.get("type") != protocol.READY:
            await channel.close()
            raise ProtocolError(
                "worker %s:%d rejected the handshake: %r"
                % (host, port,
                   (ready or {}).get("error", "connection closed")))
        return channel

    async def _serve_worker(self, peer_id: int,
                            channel: AsyncChannel) -> None:
        while True:
            item = await self._next_item(peer_id)
            if item is None:
                try:
                    await channel.send({"type": protocol.SHUTDOWN})
                except (ConnectionError, OSError, ProtocolError):
                    pass
                return
            await self._run_item(channel, peer_id, item)

    async def _run_item(self, channel: AsyncChannel, peer_id: int,
                        item: WorkItem) -> None:
        await channel.send({
            "type": protocol.ITEM, "item_id": item.item_id,
            "version": item.version, "specs": item.specs,
            "run_stress": self._run_stress,
            "verify_undo": self._verify_undo})
        missed = 0
        ping_seq = 0
        while True:
            try:
                message = await asyncio.wait_for(
                    channel.recv(), timeout=self.heartbeat_interval)
            except asyncio.TimeoutError:
                if missed >= self.heartbeat_misses:
                    raise ConnectionError(
                        "worker missed %d heartbeats" % missed)
                ping_seq += 1
                await channel.send({"type": protocol.PING,
                                    "seq": ping_seq})
                missed += 1
                continue
            if message is None:
                raise ConnectionError("worker closed mid-item")
            missed = 0
            kind = message.get("type")
            if kind == protocol.RESULT \
                    and message.get("item_id") == item.item_id:
                self._record_result(item, message["offset"],
                                    message["result"])
            elif kind == protocol.ITEM_DONE \
                    and message.get("item_id") == item.item_id:
                self._finish_item(peer_id, item,
                                  message.get("cache_delta"),
                                  failed=False)
                return
            elif kind == protocol.ERROR \
                    and message.get("item_id") in (item.item_id, None):
                # item_id None covers pre-item failures (version
                # mismatch); an error stamped with a *retired* item_id
                # is a zombie thread from an abandoned item and must
                # not fail the item currently in flight.
                self._finish_item(peer_id, item, None, failed=True)
                return
            # pongs and stale-item noise just prove liveness

    # -- local degradation --------------------------------------------------

    def _rescue_locally(self, missing: List[int]) -> None:
        """Evaluate leftover indices in-process (workers all gone or
        retries exhausted); accounting lands in the same stats.  Runs
        after the event loop has exited, so results access is safe."""
        from repro.compiler.cache import (
            merge_stats_into,
            snapshot_stats,
            stats_delta,
        )
        from repro.evaluation.harness import evaluate_cve

        before = snapshot_stats()
        for index in sorted(missing):
            if self._state.results[index] is not None:
                continue  # a straggler worker beat us to it
            result = evaluate_cve(self._specs[index],
                                  run_stress=self._run_stress,
                                  verify_undo=self._verify_undo)
            self._state.results[index] = result
            if self._progress is not None:
                self._progress(result)
            if self._stats is not None:
                self._stats.local_rescues += 1
        if self._stats is not None:
            merge_stats_into(self._stats.caches, stats_delta(before))

"""The worker side of the fabric: a serve loop over one TCP socket.

A worker is a long-lived process that listens for a coordinator,
handshakes (protocol version + disk-cache warm start), then evaluates
the ``item`` messages it is sent — each item is one kernel version plus
an ordered list of :class:`~repro.evaluation.specs.CveSpec`s, the same
shape ``engine._evaluate_group`` runs locally today.

Two threads per session keep the worker responsive:

* the **reader** (the connection's main loop) answers ``ping``
  immediately and queues incoming items, so heartbeats are serviced
  even while an evaluation is running;
* the **evaluator** drains the item queue and *streams* every finished
  ``CveResult`` back the moment it exists (``result`` message, trace
  included), then closes the item with its cache-stats delta
  (``item-done``) — the coordinator's ``progress`` callback fires
  per CVE, not per batch.

Because the process outlives items, its in-memory cache tiers warm up
across items: a worker that already evaluated one CVE of a kernel
version holds that version's run build for every later item, which is
what makes the coordinator's per-CVE work-stealing split cheap.

``spawn_local_workers`` forks workers on ephemeral localhost ports for
tests, benchmarks, and the CI smoke job; each child starts with cold
memory tiers (anything inherited from the parent is dropped) so a
spawned pool behaves like freshly started remote hosts.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.distributed import protocol
from repro.distributed.protocol import ProtocolError

#: exit status a worker uses when told to die by fail_after_items
_FAULT_EXIT = 17


def _reset_process_caches() -> None:
    """Make this process cache-cold (spawned workers inherit the parent's
    warm tiers under fork; a real remote host would not have them)."""
    from repro.compiler.cache import (
        disable_disk_cache,
        drop_memory_tiers,
        reset_cache_stats,
    )
    from repro.evaluation.kernels import kernel_for_version

    disable_disk_cache()
    drop_memory_tiers()
    reset_cache_stats()
    kernel_for_version.cache_clear()


class _Session:
    """One coordinator connection: reader loop + evaluator thread."""

    def __init__(self, sock: socket.socket,
                 fail_after_items: Optional[int] = None):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._items: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue()
        self._fail_after_items = fail_after_items
        self._items_seen = 0

    def _send(self, message: Dict[str, Any]) -> None:
        with self._send_lock:
            protocol.send_message(self._sock, message)

    def run(self) -> None:
        if not self._handshake():
            return
        evaluator = threading.Thread(target=self._evaluate_loop,
                                     daemon=True)
        evaluator.start()
        try:
            self._reader_loop()
        finally:
            self._items.put(None)
            evaluator.join(timeout=30.0)

    def _handshake(self) -> bool:
        hello = protocol.recv_message(self._sock)
        if hello is None or hello.get("type") != protocol.HELLO:
            return False
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            self._send({"type": protocol.ERROR, "item_id": None,
                        "error": "protocol version mismatch: "
                                 "coordinator %r, worker %r"
                                 % (hello.get("version"),
                                    protocol.PROTOCOL_VERSION)})
            return False
        from repro.compiler.cache import apply_disk_cache_config

        apply_disk_cache_config(hello.get("disk_cache"))
        self._send({"type": protocol.READY,
                    "version": protocol.PROTOCOL_VERSION,
                    "pid": os.getpid()})
        return True

    def _reader_loop(self) -> None:
        while True:
            try:
                message = protocol.recv_message(self._sock)
            except (ConnectionError, OSError, ProtocolError):
                return
            if message is None:
                return
            kind = message.get("type")
            if kind == protocol.PING:
                self._send({"type": protocol.PONG,
                            "seq": message.get("seq")})
            elif kind == protocol.ITEM:
                self._items_seen += 1
                if self._fail_after_items is not None \
                        and self._items_seen >= self._fail_after_items:
                    # Deterministic fault injection: die with the item
                    # in flight, exactly like a worker host crashing
                    # mid-evaluation.  os._exit skips atexit/io — the
                    # coordinator only sees the TCP connection drop.
                    os._exit(_FAULT_EXIT)
                self._items.put(message)
            elif kind == protocol.SHUTDOWN:
                return

    def _evaluate_loop(self) -> None:
        from repro.compiler.cache import snapshot_stats, stats_delta
        from repro.evaluation.harness import evaluate_cve

        while True:
            item = self._items.get()
            if item is None:
                return
            item_id = item.get("item_id")
            try:
                before = snapshot_stats()
                for offset, spec in enumerate(item["specs"]):
                    result = evaluate_cve(
                        spec, run_stress=item.get("run_stress", True),
                        verify_undo=item.get("verify_undo", False))
                    self._send({"type": protocol.RESULT,
                                "item_id": item_id, "offset": offset,
                                "result": result})
                self._send({"type": protocol.ITEM_DONE,
                            "item_id": item_id,
                            "cache_delta": stats_delta(before)})
            except (ConnectionError, OSError):
                return  # coordinator is gone; the session is over
            except Exception:
                try:
                    self._send({"type": protocol.ERROR,
                                "item_id": item_id,
                                "error": traceback.format_exc()})
                except (ConnectionError, OSError):
                    return


def serve(host: str = "127.0.0.1", port: int = 0, once: bool = False,
          ready: Optional[Callable[[str, int], None]] = None,
          fail_after_items: Optional[int] = None) -> None:
    """Listen on ``host:port`` and serve coordinator sessions forever.

    ``port=0`` binds an ephemeral port; ``ready`` (if given) receives
    the bound ``(host, port)`` before the accept loop starts — how
    spawned workers report their address.  ``once`` exits after the
    first session (used by tests and the CLI's ``--once``).
    ``fail_after_items`` makes the process exit abruptly upon receiving
    its Nth item — fault injection for the retry tests.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(4)
    bound_host, bound_port = listener.getsockname()[:2]
    if ready is not None:
        ready(bound_host, bound_port)
    try:
        while True:
            sock, _addr = listener.accept()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                _Session(sock, fail_after_items=fail_after_items).run()
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
            if once:
                return
    finally:
        listener.close()


# -- localhost spawning (tests, benchmarks, CI smoke) -----------------------


@dataclass
class LocalWorker:
    """Handle on one spawned localhost worker process."""

    process: Any  # multiprocessing.Process
    host: str
    port: int

    @property
    def address(self) -> str:
        return "%s:%d" % (self.host, self.port)

    def kill(self) -> None:
        """SIGKILL — the crash the retry machinery exists for."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10.0)

    def stop(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=10.0)


def _serve_child(conn, fail_after_items: Optional[int]) -> None:
    _reset_process_caches()

    def report(host: str, port: int) -> None:
        conn.send((host, port))
        conn.close()

    serve(ready=report, fail_after_items=fail_after_items)


def spawn_local_workers(count: int,
                        fail_after_items: Optional[int] = None,
                        ) -> List[LocalWorker]:
    """Fork ``count`` workers on ephemeral localhost ports.

    Each child reports its bound address over a pipe before accepting;
    the returned handles are ready to be passed (``.address``) straight
    to ``evaluate_corpus(workers=...)``.  ``fail_after_items`` applies
    to every spawned worker (tests usually spawn the faulty one
    separately).  Callers own cleanup: ``worker.stop()`` each handle.
    """
    import multiprocessing

    workers: List[LocalWorker] = []
    try:
        for _ in range(count):
            parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
            process = multiprocessing.Process(
                target=_serve_child, args=(child_conn, fail_after_items),
                daemon=True)
            process.start()
            child_conn.close()
            if not parent_conn.poll(30.0):
                raise ProtocolError("spawned worker did not report its "
                                    "address within 30s")
            host, port = parent_conn.recv()
            parent_conn.close()
            workers.append(LocalWorker(process=process, host=host,
                                       port=port))
    except Exception:
        for worker in workers:
            worker.stop()
        raise
    return workers

"""The worker side of the fabric: a serve loop over one TCP socket.

A worker is a long-lived process that listens for a coordinator,
handshakes (protocol version + disk-cache warm start), then evaluates
the ``item`` messages it is sent — each item is one kernel version plus
an ordered list of :class:`~repro.evaluation.specs.CveSpec`s, the same
shape ``engine._evaluate_group`` runs locally today.

Two threads per session keep the worker responsive:

* the **reader** (the connection's main loop) answers ``ping``
  immediately and queues incoming items, so heartbeats are serviced
  even while an evaluation is running;
* the **evaluator** drains the item queue and *streams* every finished
  ``CveResult`` back the moment it exists (``result`` message, trace
  included), then closes the item with its cache-stats delta
  (``item-done``) — the coordinator's ``progress`` callback fires
  per CVE, not per batch.

Because the process outlives items, its in-memory cache tiers warm up
across items: a worker that already evaluated one CVE of a kernel
version holds that version's run build for every later item, which is
what makes the coordinator's per-CVE work-stealing split cheap.

Two hardening knobs guard a deployed worker:

* ``secret`` (CLI ``--secret`` / env ``KSPLICE_WORKER_SECRET``) turns
  on the HMAC challenge/response from :mod:`repro.distributed.protocol`
  — unauthenticated peers are dropped before the worker unpickles a
  single frame;
* ``item_timeout`` bounds each item's wall clock.  Evaluation runs on
  a per-item daemon thread; if it outlives the budget the worker
  abandons it, answers with a reasoned ``error`` frame, and moves on —
  a wedged CVE costs one item, not the whole session's heartbeat loop.
  Late ``result`` frames from an abandoned thread reuse a retired
  ``item_id``, which the coordinator already discards as stale.

``spawn_local_workers`` forks workers on ephemeral localhost ports for
tests, benchmarks, and the CI smoke job; each child starts with cold
memory tiers (anything inherited from the parent is dropped) so a
spawned pool behaves like freshly started remote hosts.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.distributed import protocol
from repro.distributed.protocol import AuthError, ProtocolError

#: exit status a worker uses when told to die by fail_after_items
_FAULT_EXIT = 17


def _reset_process_caches() -> None:
    """Make this process cache-cold (spawned workers inherit the parent's
    warm tiers under fork; a real remote host would not have them)."""
    from repro.compiler.cache import (
        disable_disk_cache,
        drop_memory_tiers,
        reset_cache_stats,
    )
    from repro.evaluation.kernels import kernel_for_version

    disable_disk_cache()
    drop_memory_tiers()
    reset_cache_stats()
    kernel_for_version.cache_clear()


class _Session:
    """One coordinator connection: reader loop + evaluator thread."""

    def __init__(self, sock: socket.socket,
                 fail_after_items: Optional[int] = None,
                 secret: Optional[bytes] = None,
                 item_timeout: Optional[float] = None,
                 wedge_seconds: Optional[float] = None):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._items: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue()
        self._fail_after_items = fail_after_items
        self._secret = secret
        self._item_timeout = item_timeout
        self._wedge_seconds = wedge_seconds
        self._items_seen = 0

    def _send(self, message: Dict[str, Any]) -> None:
        with self._send_lock:
            protocol.send_message(self._sock, message)

    def run(self) -> None:
        try:
            protocol.worker_auth_accept(self._sock, self._secret)
        except (AuthError, ConnectionError, OSError):
            return  # drop the peer: nothing was unpickled
        if not self._handshake():
            return
        evaluator = threading.Thread(target=self._evaluate_loop,
                                     daemon=True)
        evaluator.start()
        try:
            self._reader_loop()
        finally:
            self._items.put(None)
            evaluator.join(timeout=30.0)

    def _handshake(self) -> bool:
        hello = protocol.recv_message(self._sock)
        if hello is None or hello.get("type") != protocol.HELLO:
            return False
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            self._send({"type": protocol.ERROR, "item_id": None,
                        "error": "protocol version mismatch: "
                                 "coordinator %r, worker %r"
                                 % (hello.get("version"),
                                    protocol.PROTOCOL_VERSION)})
            return False
        from repro.compiler.cache import apply_disk_cache_config

        apply_disk_cache_config(hello.get("disk_cache"))
        self._send({"type": protocol.READY,
                    "version": protocol.PROTOCOL_VERSION,
                    "pid": os.getpid()})
        return True

    def _reader_loop(self) -> None:
        while True:
            try:
                message = protocol.recv_message(self._sock)
            except (ConnectionError, OSError, ProtocolError):
                return
            if message is None:
                return
            kind = message.get("type")
            if kind == protocol.PING:
                self._send({"type": protocol.PONG,
                            "seq": message.get("seq")})
            elif kind == protocol.ITEM:
                self._items_seen += 1
                if self._fail_after_items is not None \
                        and self._items_seen >= self._fail_after_items:
                    # Deterministic fault injection: die with the item
                    # in flight, exactly like a worker host crashing
                    # mid-evaluation.  os._exit skips atexit/io — the
                    # coordinator only sees the TCP connection drop.
                    os._exit(_FAULT_EXIT)
                self._items.put(message)
            elif kind == protocol.SHUTDOWN:
                return

    def _evaluate_loop(self) -> None:
        while True:
            item = self._items.get()
            if item is None:
                return
            if self._item_timeout is None:
                if not self._run_item(item):
                    return
                continue
            # Wall-clock budget: the item runs on its own daemon
            # thread; a thread cannot be killed, so on timeout the
            # worker *abandons* it and reports why.  Stray frames the
            # zombie thread sends later carry this retired item_id and
            # are dropped by the coordinator as stale.
            done = threading.Event()
            runner = threading.Thread(
                target=lambda: (self._run_item(item), done.set()),
                daemon=True)
            runner.start()
            if not done.wait(self._item_timeout):
                try:
                    self._send({
                        "type": protocol.ERROR,
                        "item_id": item.get("item_id"),
                        "error": "item exceeded the worker's "
                                 "--item-timeout of %.1fs; abandoned"
                                 % self._item_timeout})
                except (ConnectionError, OSError):
                    return

    def _run_item(self, item: Dict[str, Any]) -> bool:
        """Evaluate one item; ``False`` means the session is dead."""
        item_id = item.get("item_id")
        try:
            if self._wedge_seconds is not None:
                # Fault injection for the timeout tests: the "CVE"
                # wedges exactly like an interpreter loop that never
                # terminates would.
                time.sleep(self._wedge_seconds)
            if item.get("kind") == "fleet-rollout":
                self._run_fleet_item(item)
            else:
                self._run_evaluate_item(item)
            return True
        except (ConnectionError, OSError):
            return False  # coordinator is gone; the session is over
        except Exception:
            try:
                self._send({"type": protocol.ERROR,
                            "item_id": item_id,
                            "error": traceback.format_exc()})
            except (ConnectionError, OSError):
                return False
            return True

    def _run_evaluate_item(self, item: Dict[str, Any]) -> None:
        from repro.compiler.cache import snapshot_stats, stats_delta
        from repro.evaluation.harness import evaluate_cve

        item_id = item.get("item_id")
        before = snapshot_stats()
        for offset, spec in enumerate(item["specs"]):
            result = evaluate_cve(
                spec, run_stress=item.get("run_stress", True),
                verify_undo=item.get("verify_undo", False))
            self._send({"type": protocol.RESULT,
                        "item_id": item_id, "offset": offset,
                        "result": result})
        self._send({"type": protocol.ITEM_DONE,
                    "item_id": item_id,
                    "cache_delta": stats_delta(before)})

    def _run_fleet_item(self, item: Dict[str, Any]) -> None:
        """A whole canary rollout as one item, waves streamed back."""
        from repro.fleet.remote import execute_rollout_item

        item_id = item.get("item_id")

        def on_wave(wave_dict: Dict[str, Any]) -> None:
            self._send({"type": protocol.RESULT, "item_id": item_id,
                        "offset": wave_dict.get("index", 0),
                        "wave": wave_dict})

        report = execute_rollout_item(item["plan"], on_wave=on_wave)
        self._send({"type": protocol.ITEM_DONE, "item_id": item_id,
                    "report": report})


def serve(host: str = "127.0.0.1", port: int = 0, once: bool = False,
          ready: Optional[Callable[[str, int], None]] = None,
          fail_after_items: Optional[int] = None,
          secret: Optional[bytes] = None,
          item_timeout: Optional[float] = None,
          wedge_seconds: Optional[float] = None) -> None:
    """Listen on ``host:port`` and serve coordinator sessions forever.

    ``port=0`` binds an ephemeral port; ``ready`` (if given) receives
    the bound ``(host, port)`` before the accept loop starts — how
    spawned workers report their address.  ``once`` exits after the
    first session (used by tests and the CLI's ``--once``).
    ``fail_after_items`` makes the process exit abruptly upon receiving
    its Nth item — fault injection for the retry tests — and
    ``wedge_seconds`` stalls every item, fault injection for the
    ``item_timeout`` budget.  ``secret=None`` falls back to
    ``KSPLICE_WORKER_SECRET``; pass ``b""`` to force an open worker.
    """
    if secret is None:
        secret = protocol.default_secret()
    elif not secret:
        secret = None
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(4)
    bound_host, bound_port = listener.getsockname()[:2]
    if ready is not None:
        ready(bound_host, bound_port)
    try:
        while True:
            sock, _addr = listener.accept()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                _Session(sock, fail_after_items=fail_after_items,
                         secret=secret, item_timeout=item_timeout,
                         wedge_seconds=wedge_seconds).run()
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
            if once:
                return
    finally:
        listener.close()


# -- localhost spawning (tests, benchmarks, CI smoke) -----------------------


@dataclass
class LocalWorker:
    """Handle on one spawned localhost worker process."""

    process: Any  # multiprocessing.Process
    host: str
    port: int

    @property
    def address(self) -> str:
        return "%s:%d" % (self.host, self.port)

    def kill(self) -> None:
        """SIGKILL — the crash the retry machinery exists for."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10.0)

    def stop(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=10.0)


def _serve_child(conn, fail_after_items: Optional[int],
                 secret: Optional[bytes] = None,
                 item_timeout: Optional[float] = None,
                 wedge_seconds: Optional[float] = None) -> None:
    _reset_process_caches()

    def report(host: str, port: int) -> None:
        conn.send((host, port))
        conn.close()

    serve(ready=report, fail_after_items=fail_after_items,
          secret=secret if secret is not None else b"",
          item_timeout=item_timeout, wedge_seconds=wedge_seconds)


def spawn_local_workers(count: int,
                        fail_after_items: Optional[int] = None,
                        secret: Optional[bytes] = None,
                        item_timeout: Optional[float] = None,
                        wedge_seconds: Optional[float] = None,
                        ) -> List[LocalWorker]:
    """Fork ``count`` workers on ephemeral localhost ports.

    Each child reports its bound address over a pipe before accepting;
    the returned handles are ready to be passed (``.address``) straight
    to ``evaluate_corpus(workers=...)``.  ``fail_after_items`` applies
    to every spawned worker (tests usually spawn the faulty one
    separately); ``secret``/``item_timeout``/``wedge_seconds`` likewise
    (spawned children deliberately ignore the parent's
    ``KSPLICE_WORKER_SECRET`` so tests control auth explicitly).
    Callers own cleanup: ``worker.stop()`` each handle.
    """
    import multiprocessing

    workers: List[LocalWorker] = []
    try:
        for _ in range(count):
            parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
            process = multiprocessing.Process(
                target=_serve_child,
                args=(child_conn, fail_after_items, secret,
                      item_timeout, wedge_seconds),
                daemon=True)
            process.start()
            child_conn.close()
            if not parent_conn.poll(30.0):
                raise ProtocolError("spawned worker did not report its "
                                    "address within 30s")
            host, port = parent_conn.recv()
            parent_conn.close()
            workers.append(LocalWorker(process=process, host=host,
                                       port=port))
    except Exception:
        for worker in workers:
            worker.stop()
        raise
    return workers

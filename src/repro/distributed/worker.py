"""The worker side of the fabric: one asyncio loop per process.

A worker is a long-lived process that listens for coordinators,
handshakes (v3 encrypted session, then protocol version + disk-cache
warm start), and evaluates the ``item`` messages it is sent — each item
is one kernel version plus an ordered list of
:class:`~repro.evaluation.specs.CveSpec`s, the same shape
``engine._evaluate_group`` runs locally today.

The session runs on the event loop; **evaluation runs in an executor
thread**.  That split is what fixes heartbeat starvation: the loop is
always free to answer ``ping`` with ``pong`` the instant it arrives,
even when the current item has been grinding for minutes — a busy
worker no longer looks dead.  The evaluating thread streams every
finished ``CveResult`` back the moment it exists through
:meth:`~repro.distributed.aio.AsyncChannel.send_threadsafe` (parking on
the bounded send queue when the coordinator reads slowly), then closes
the item with its cache-stats delta (``item-done``).

Because the process outlives items, its in-memory cache tiers warm up
across items: a worker that already evaluated one CVE of a kernel
version holds that version's run build for every later item, which is
what makes the coordinator's per-CVE work-stealing split cheap.

Hardening knobs:

* ``secret`` (CLI ``--secret`` / env ``KSPLICE_WORKER_SECRET``) selects
  the mutual-HMAC handshake mode; without one the session still key-
  exchanges (anonymous DH) so every data frame is encrypted either way.
  Unauthenticated peers are dropped before one data frame is decoded.
* ``item_timeout`` bounds each item's wall clock.  A thread cannot be
  killed, so on timeout the worker *abandons* the evaluation, answers
  with a reasoned ``error`` frame, and moves on; late ``result`` frames
  from the zombie thread reuse a retired ``item_id``, which the
  coordinator discards as stale.
* ``max_frame`` bounds every incoming and outgoing session frame; an
  oversized claim drops the peer before allocation.

``spawn_local_workers`` forks workers on ephemeral localhost ports for
tests, benchmarks, and the CI smoke job; each child starts with cold
memory tiers (anything inherited from the parent is dropped) so a
spawned pool behaves like freshly started remote hosts.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.distributed import aio, protocol
from repro.distributed.aio import AsyncChannel
from repro.distributed.protocol import (
    MAX_FRAME,
    AuthError,
    ProtocolError,
)

#: exit status a worker uses when told to die by fail_after_items
_FAULT_EXIT = 17


def _reset_process_caches() -> None:
    """Make this process cache-cold (spawned workers inherit the parent's
    warm tiers under fork; a real remote host would not have them)."""
    from repro.compiler.cache import (
        disable_disk_cache,
        drop_memory_tiers,
        reset_cache_stats,
    )
    from repro.evaluation.kernels import kernel_for_version

    disable_disk_cache()
    drop_memory_tiers()
    reset_cache_stats()
    kernel_for_version.cache_clear()


class _Session:
    """One coordinator connection: reader coroutine + evaluator task."""

    def __init__(self, channel: AsyncChannel,
                 fail_after_items: Optional[int] = None,
                 item_timeout: Optional[float] = None,
                 wedge_seconds: Optional[float] = None):
        self._channel = channel
        self._items: "asyncio.Queue[Optional[Dict[str, Any]]]" = \
            asyncio.Queue()
        self._fail_after_items = fail_after_items
        self._item_timeout = item_timeout
        self._wedge_seconds = wedge_seconds
        self._items_seen = 0

    async def run(self) -> None:
        if not await self._handshake():
            return
        evaluator = asyncio.get_running_loop().create_task(
            self._evaluate_loop())
        try:
            await self._reader_loop()
        finally:
            await self._items.put(None)
            try:
                await asyncio.wait_for(evaluator, timeout=30.0)
            except (asyncio.TimeoutError, Exception):
                evaluator.cancel()

    async def _handshake(self) -> bool:
        try:
            hello = await self._channel.recv()
        except (ConnectionError, ProtocolError, OSError):
            return False
        if hello is None or hello.get("type") != protocol.HELLO:
            return False
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            await self._channel.send(
                {"type": protocol.ERROR, "item_id": None,
                 "error": "protocol version mismatch: "
                          "coordinator %r, worker %r"
                          % (hello.get("version"),
                             protocol.PROTOCOL_VERSION)})
            return False
        from repro.compiler.cache import apply_disk_cache_config

        apply_disk_cache_config(hello.get("disk_cache"))
        await self._channel.send({"type": protocol.READY,
                                  "version": protocol.PROTOCOL_VERSION,
                                  "pid": os.getpid()})
        return True

    async def _reader_loop(self) -> None:
        """The loop side of the session: always free to answer pings —
        evaluation happens on executor threads, so a grinding item never
        delays the pong (the v2 fabric's heartbeat-starvation bug)."""
        while True:
            try:
                message = await self._channel.recv()
            except (ConnectionError, OSError, ProtocolError):
                return
            if message is None:
                return
            kind = message.get("type")
            if kind == protocol.PING:
                await self._channel.send({"type": protocol.PONG,
                                          "seq": message.get("seq")})
            elif kind == protocol.ITEM:
                self._items_seen += 1
                if self._fail_after_items is not None \
                        and self._items_seen >= self._fail_after_items:
                    # Deterministic fault injection: die with the item
                    # in flight, exactly like a worker host crashing
                    # mid-evaluation.  os._exit skips atexit/io — the
                    # coordinator only sees the TCP connection drop.
                    os._exit(_FAULT_EXIT)
                await self._items.put(message)
            elif kind == protocol.SHUTDOWN:
                return

    async def _evaluate_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._items.get()
            if item is None:
                return
            future = loop.run_in_executor(None, self._run_item, item)
            if self._item_timeout is None:
                if not await future:
                    return
                continue
            # Wall-clock budget: the item runs on an executor thread; a
            # thread cannot be killed, so on timeout the worker
            # *abandons* it (shield keeps the future alive so the
            # zombie thread finishes quietly) and reports why.  Stray
            # frames the zombie sends later carry this retired item_id
            # and are dropped by the coordinator as stale.
            try:
                ok = await asyncio.wait_for(asyncio.shield(future),
                                            self._item_timeout)
            except asyncio.TimeoutError:
                try:
                    await self._channel.send({
                        "type": protocol.ERROR,
                        "item_id": item.get("item_id"),
                        "error": "item exceeded the worker's "
                                 "--item-timeout of %.1fs; abandoned"
                                 % self._item_timeout})
                except (ConnectionError, ProtocolError, OSError):
                    return
                continue
            if not ok:
                return

    # -- blocking side (executor threads) -----------------------------------

    def _send_from_thread(self, message: Dict[str, Any]) -> None:
        self._channel.send_threadsafe(message)

    def _run_item(self, item: Dict[str, Any]) -> bool:
        """Evaluate one item; ``False`` means the session is dead."""
        item_id = item.get("item_id")
        try:
            if self._wedge_seconds is not None:
                # Fault injection for the timeout tests: the "CVE"
                # wedges exactly like an interpreter loop that never
                # terminates would.
                time.sleep(self._wedge_seconds)
            if item.get("kind") == "fleet-rollout":
                self._run_fleet_item(item)
            else:
                self._run_evaluate_item(item)
            return True
        except (ConnectionError, OSError):
            return False  # coordinator is gone; the session is over
        except Exception:
            try:
                self._send_from_thread({"type": protocol.ERROR,
                                        "item_id": item_id,
                                        "error": traceback.format_exc()})
            except (ConnectionError, OSError):
                return False
            return True

    def _run_evaluate_item(self, item: Dict[str, Any]) -> None:
        from repro.compiler.cache import snapshot_stats, stats_delta
        from repro.evaluation.harness import evaluate_cve

        item_id = item.get("item_id")
        before = snapshot_stats()
        for offset, spec in enumerate(item["specs"]):
            result = evaluate_cve(
                spec, run_stress=item.get("run_stress", True),
                verify_undo=item.get("verify_undo", False))
            self._send_from_thread({"type": protocol.RESULT,
                                    "item_id": item_id, "offset": offset,
                                    "result": result})
        self._send_from_thread({"type": protocol.ITEM_DONE,
                                "item_id": item_id,
                                "cache_delta": stats_delta(before)})

    def _run_fleet_item(self, item: Dict[str, Any]) -> None:
        """A whole canary rollout as one item, waves streamed back."""
        from repro.fleet.remote import execute_rollout_item

        item_id = item.get("item_id")

        def on_wave(wave_dict: Dict[str, Any]) -> None:
            self._send_from_thread({"type": protocol.RESULT,
                                    "item_id": item_id,
                                    "offset": wave_dict.get("index", 0),
                                    "wave": wave_dict})

        report = execute_rollout_item(item["plan"], on_wave=on_wave)
        self._send_from_thread({"type": protocol.ITEM_DONE,
                                "item_id": item_id, "report": report})


async def serve_async(host: str = "127.0.0.1", port: int = 0,
                      once: bool = False,
                      ready: Optional[Callable[[str, int], None]] = None,
                      fail_after_items: Optional[int] = None,
                      secret: Optional[bytes] = None,
                      item_timeout: Optional[float] = None,
                      wedge_seconds: Optional[float] = None,
                      max_frame: int = MAX_FRAME) -> None:
    """The worker's accept loop on the running event loop.

    One loop multiplexes every coordinator session; see :func:`serve`
    for the knob semantics.  ``secret`` here is already normalized
    (``None`` means an open worker with anonymous key exchange).
    """
    done = asyncio.Event()

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            channel = await aio.accept_channel(reader, writer, secret,
                                               max_frame=max_frame)
        except (AuthError, ProtocolError, ConnectionError, OSError,
                asyncio.IncompleteReadError):
            # drop the peer: nothing past the handshake was decoded
            try:
                writer.close()
            except OSError:
                pass
            return
        try:
            await _Session(channel,
                           fail_after_items=fail_after_items,
                           item_timeout=item_timeout,
                           wedge_seconds=wedge_seconds).run()
        finally:
            await channel.close()
            if once:
                done.set()

    server = await asyncio.start_server(handle, host, port)
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound_host, bound_port)
    try:
        if once:
            await done.wait()
        else:
            await server.serve_forever()
    finally:
        server.close()
        await server.wait_closed()


def serve(host: str = "127.0.0.1", port: int = 0, once: bool = False,
          ready: Optional[Callable[[str, int], None]] = None,
          fail_after_items: Optional[int] = None,
          secret: Optional[bytes] = None,
          item_timeout: Optional[float] = None,
          wedge_seconds: Optional[float] = None,
          max_frame: int = MAX_FRAME) -> None:
    """Listen on ``host:port`` and serve coordinator sessions forever.

    ``port=0`` binds an ephemeral port; ``ready`` (if given) receives
    the bound ``(host, port)`` before the accept loop starts — how
    spawned workers report their address.  ``once`` exits after the
    first session (used by tests and the CLI's ``--once``).
    ``fail_after_items`` makes the process exit abruptly upon receiving
    its Nth item — fault injection for the retry tests — and
    ``wedge_seconds`` stalls every item, fault injection for the
    ``item_timeout`` budget.  ``secret=None`` falls back to
    ``KSPLICE_WORKER_SECRET``; pass ``b""`` to force an open worker.
    ``max_frame`` bounds every session frame in both directions.
    """
    if secret is None:
        secret = protocol.default_secret()
    elif not secret:
        secret = None
    asyncio.run(serve_async(host=host, port=port, once=once, ready=ready,
                            fail_after_items=fail_after_items,
                            secret=secret, item_timeout=item_timeout,
                            wedge_seconds=wedge_seconds,
                            max_frame=max_frame))


# -- localhost spawning (tests, benchmarks, CI smoke) -----------------------


@dataclass
class LocalWorker:
    """Handle on one spawned localhost worker process."""

    process: Any  # multiprocessing.Process
    host: str
    port: int

    @property
    def address(self) -> str:
        return "%s:%d" % (self.host, self.port)

    def kill(self) -> None:
        """SIGKILL — the crash the retry machinery exists for."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10.0)

    def stop(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=10.0)


def _serve_child(conn, fail_after_items: Optional[int],
                 secret: Optional[bytes] = None,
                 item_timeout: Optional[float] = None,
                 wedge_seconds: Optional[float] = None) -> None:
    _reset_process_caches()

    def report(host: str, port: int) -> None:
        conn.send((host, port))
        conn.close()

    serve(ready=report, fail_after_items=fail_after_items,
          secret=secret if secret is not None else b"",
          item_timeout=item_timeout, wedge_seconds=wedge_seconds)


def spawn_local_workers(count: int,
                        fail_after_items: Optional[int] = None,
                        secret: Optional[bytes] = None,
                        item_timeout: Optional[float] = None,
                        wedge_seconds: Optional[float] = None,
                        ) -> List[LocalWorker]:
    """Fork ``count`` workers on ephemeral localhost ports.

    Each child reports its bound address over a pipe before accepting;
    the returned handles are ready to be passed (``.address``) straight
    to ``evaluate_corpus(workers=...)``.  ``fail_after_items`` applies
    to every spawned worker (tests usually spawn the faulty one
    separately); ``secret``/``item_timeout``/``wedge_seconds`` likewise
    (spawned children deliberately ignore the parent's
    ``KSPLICE_WORKER_SECRET`` so tests control auth explicitly).
    Callers own cleanup: ``worker.stop()`` each handle.
    """
    import multiprocessing

    workers: List[LocalWorker] = []
    try:
        for _ in range(count):
            parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
            process = multiprocessing.Process(
                target=_serve_child,
                args=(child_conn, fail_after_items, secret,
                      item_timeout, wedge_seconds),
                daemon=True)
            process.start()
            child_conn.close()
            if not parent_conn.poll(30.0):
                raise ProtocolError("spawned worker did not report its "
                                    "address within 30s")
            host, port = parent_conn.recv()
            parent_conn.close()
            workers.append(LocalWorker(process=process, host=host,
                                       port=port))
    except Exception:
        for worker in workers:
            worker.stop()
        raise
    return workers

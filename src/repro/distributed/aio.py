"""The asyncio transport: one event loop, thousands of peers.

v2 spent one OS thread per connection on both ends of the fabric —
fine for four workers, a wall at fleet scale (10k members × ~8 MiB of
stack + scheduler thrash).  v3 multiplexes every peer on one event
loop through :class:`AsyncChannel`, which pairs a **reader task**
(decodes records into a bounded receive queue) with a **writer task**
(drains a bounded send queue through ``drain()``):

* the reader-task design makes ``recv()`` *cancellation-safe* — a
  heartbeat ``wait_for`` timeout never strands half a record, because
  the reader task itself is never cancelled mid-read;
* the bounded send queue is the fabric's **backpressure**: a slow
  consumer parks its producers (``await send(...)`` blocks when the
  queue is full) instead of ballooning coordinator memory with queued
  frames.  Blocking worker threads push into the same queue through
  :meth:`AsyncChannel.send_threadsafe`, so an evaluation thread
  streaming results feels the same backpressure the loop does.

Frames and crypto are identical to the synchronous
:class:`~repro.distributed.protocol.MessageStream` — the two transports
are byte-compatible on the wire, and a sync peer can talk to an async
peer freely.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Any, Dict, Optional

from repro.distributed import wire
from repro.distributed.crypto import (
    MAX_HANDSHAKE_FRAME,
    CipherPair,
    ClientHandshake,
    FrameAuthError,
    HandshakeError,
    ServerHandshake,
)
from repro.distributed.protocol import (
    BATCH_FRAMES,
    MAX_FRAME,
    _RECORD_SLACK,
    AuthError,
    ProtocolError,
    pack_batch,
    split_batch,
)
from repro.distributed.wire import WireError

_RECORD_HEADER = struct.Struct("!I")

#: default bound for both per-peer queues (records, not bytes)
SEND_QUEUE_SIZE = 64
RECV_QUEUE_SIZE = 256


async def _send_raw(writer: asyncio.StreamWriter, payload: bytes) -> None:
    writer.write(_RECORD_HEADER.pack(len(payload)) + payload)
    await writer.drain()


async def _recv_raw(reader: asyncio.StreamReader) -> bytes:
    header = await reader.readexactly(_RECORD_HEADER.size)
    (length,) = _RECORD_HEADER.unpack(header)
    if length > MAX_HANDSHAKE_FRAME:
        raise AuthError("pre-auth frame claims %d bytes (max %d)"
                        % (length, MAX_HANDSHAKE_FRAME))
    if length == 0:
        return b""
    return await reader.readexactly(length)


class AsyncChannel:
    """One established v3 session on the event loop."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 ciphers: Optional[CipherPair],
                 max_frame: int = MAX_FRAME,
                 send_queue: int = SEND_QUEUE_SIZE):
        self._reader = reader
        self._writer = writer
        self._ciphers = ciphers
        self.max_frame = max_frame
        self._loop = asyncio.get_running_loop()
        self._rx: "asyncio.Queue[Optional[Dict[str, Any]]]" = \
            asyncio.Queue(RECV_QUEUE_SIZE)
        self._tx: "asyncio.Queue[Optional[bytes]]" = \
            asyncio.Queue(send_queue)
        self._rx_error: Optional[BaseException] = None
        self._tx_error: Optional[BaseException] = None
        self._hook = None
        self._hook_end = None
        self._closed = False
        self._reader_task = self._loop.create_task(self._read_loop())
        self._writer_task = self._loop.create_task(self._write_loop())

    @property
    def encrypted(self) -> bool:
        return self._ciphers is not None

    @property
    def authenticated(self) -> bool:
        return self._ciphers is not None and self._ciphers.authenticated

    # -- reading ------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                try:
                    header = await self._reader.readexactly(
                        _RECORD_HEADER.size)
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        raise ConnectionError("peer closed mid-frame")
                    break  # clean EOF
                (length,) = _RECORD_HEADER.unpack(header)
                if length > self.max_frame + _RECORD_SLACK:
                    raise ProtocolError(
                        "incoming record claims %d bytes (session "
                        "max_frame is %d); dropping the peer"
                        % (length, self.max_frame))
                try:
                    record = await self._reader.readexactly(length) \
                        if length else b""
                except asyncio.IncompleteReadError:
                    raise ConnectionError("peer closed mid-frame")
                try:
                    blob = record if self._ciphers is None \
                        else self._ciphers.rx.open(record)
                except FrameAuthError as exc:
                    raise ProtocolError(str(exc))
                frames = split_batch(blob, self.max_frame)
                try:
                    messages = [wire.decode_frame(f) for f in frames]
                except WireError as exc:
                    raise ProtocolError(str(exc))
                if self._hook is not None:
                    await self._hook(messages)
                else:
                    for message in messages:
                        await self._rx.put(message)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, ProtocolError, OSError) as exc:
            self._rx_error = exc
        if self._hook_end is not None:
            self._hook_end(self._rx_error)
        else:
            await self._rx.put(None)

    async def recv(self) -> Optional[Dict[str, Any]]:
        """One message; ``None`` on clean EOF; raises the connection's
        terminal error once the queue has drained."""
        message = await self._rx.get()
        if message is None:
            if self._rx_error is not None:
                raise self._rx_error  # noqa: raise-from — original error
            return None
        return message

    async def install_hook(self, on_messages, on_end) -> None:
        """Divert incoming messages to an async callback (hot path).

        ``on_messages(batch)`` is awaited by the reader task with the
        full list of messages decoded from each record — no
        receive-queue hop, no consumer-task wakeup, and an
        ``await channel.send(...)`` inside the callback backpressures
        the *peer* naturally (the reader stops reading while parked).
        ``on_end(error_or_none)`` fires once at EOF or failure.  After
        installation :meth:`recv` must not be used.  Install only while
        the peer is quiescent (e.g. right after a request/response
        exchange); anything already queued is replayed into the
        callback first.
        """
        self._hook = on_messages
        self._hook_end = on_end
        replay = []
        while True:
            try:
                queued = self._rx.get_nowait()
            except asyncio.QueueEmpty:
                break
            if queued is None:
                if replay:
                    await on_messages(replay)
                on_end(self._rx_error)
                return
            replay.append(queued)
        if replay:
            await on_messages(replay)

    # -- writing ------------------------------------------------------------

    async def _write_loop(self) -> None:
        try:
            while True:
                item = await self._tx.get()
                if item is None:
                    return
                # Coalesce everything already queued into sealed
                # records — a pipelined burst of frames costs one
                # keystream + MAC and one syscall per record, not one
                # per frame.  A queue item is one frame (bytes) or a
                # pre-encoded burst (list of frames).
                pending = list(item) if isinstance(item, list) \
                    else [item]
                done = False
                while not done:
                    try:
                        item = self._tx.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if item is None:
                        done = True
                    elif isinstance(item, list):
                        pending.extend(item)
                    else:
                        pending.append(item)
                frames, total = [], 0
                for frame in pending:
                    if frames and (total + len(frame) > self.max_frame
                                   or len(frames) >= BATCH_FRAMES):
                        self._write_record(frames)
                        frames, total = [], 0
                    frames.append(frame)
                    total += len(frame)
                if frames:
                    self._write_record(frames)
                await self._writer.drain()
                if done:
                    return
        except (ConnectionError, OSError) as exc:
            self._tx_error = exc
            # drain producers so senders see the error, not a hang
            while True:
                if await self._tx.get() is None:
                    return
        except asyncio.CancelledError:
            raise

    def _write_record(self, frames) -> None:
        plain = pack_batch(frames)
        record = plain if self._ciphers is None \
            else self._ciphers.tx.seal(plain)
        self._writer.write(_RECORD_HEADER.pack(len(record)) + record)

    def _encode(self, message: Dict[str, Any]) -> bytes:
        try:
            frame = wire.encode_frame(message)
        except WireError as exc:
            raise ProtocolError(str(exc))
        if len(frame) > self.max_frame:
            raise ProtocolError("frame of %d bytes exceeds the session "
                                "max_frame (%d)"
                                % (len(frame), self.max_frame))
        return frame

    async def send(self, message: Dict[str, Any]) -> None:
        """Queue one message; parks when the peer's queue is full."""
        if self._tx_error is not None:
            raise ConnectionError("send on a dead channel: %s"
                                  % self._tx_error)
        await self._tx.put(self._encode(message))

    async def send_batch(self, messages) -> None:
        """Queue a pipelined burst as one item (one writer wakeup).

        The burst occupies a single send-queue slot, so callers should
        keep bursts modest (a rollout's wave list, a result stream) —
        backpressure granularity is the burst, not the frame.
        """
        if self._tx_error is not None:
            raise ConnectionError("send on a dead channel: %s"
                                  % self._tx_error)
        frames = [self._encode(m) for m in messages]
        if frames:
            await self._tx.put(frames)

    async def send_frames(self, frames) -> None:
        """Queue already-encoded frames (broadcast hot path).

        A dispatcher pushing the same update to 10k members encodes it
        once with :func:`~repro.distributed.wire.encode_frame` and
        fans the bytes out; each channel still seals them under its
        own session keys.  Frames must individually fit ``max_frame``.
        """
        if self._tx_error is not None:
            raise ConnectionError("send on a dead channel: %s"
                                  % self._tx_error)
        for frame in frames:
            if len(frame) > self.max_frame:
                raise ProtocolError(
                    "frame of %d bytes exceeds the session max_frame "
                    "(%d)" % (len(frame), self.max_frame))
        if frames:
            await self._tx.put(list(frames))

    def send_threadsafe(self, message: Dict[str, Any],
                        timeout: float = 60.0) -> None:
        """Send from a worker thread (blocking, backpressured)."""
        future = asyncio.run_coroutine_threadsafe(self.send(message),
                                                  self._loop)
        future.result(timeout)

    # -- lifecycle ----------------------------------------------------------

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            await asyncio.wait_for(self._tx.put(None), timeout=5.0)
            await asyncio.wait_for(self._writer_task, timeout=5.0)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def accept_channel(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         secret: Optional[bytes],
                         max_frame: int = MAX_FRAME,
                         send_queue: int = SEND_QUEUE_SIZE,
                         ) -> AsyncChannel:
    """Server side of the v3 handshake on the event loop.

    Anonymous-mode DH runs in the default executor so a burst of
    connecting peers cannot stall the loop on modexp; secret-mode
    handshakes are a few HMACs and run inline.
    """
    loop = asyncio.get_running_loop()
    sock = writer.get_extra_info("socket")
    if sock is not None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        if secret:
            handshake = ServerHandshake(secret)
            await _send_raw(writer, handshake.banner())
            confirm = handshake.verify(await _recv_raw(reader))
        else:
            handshake = await loop.run_in_executor(None, ServerHandshake,
                                                   secret)
            await _send_raw(writer, handshake.banner())
            response = await _recv_raw(reader)
            confirm = await loop.run_in_executor(None, handshake.verify,
                                                 response)
        await _send_raw(writer, confirm)
    except HandshakeError as exc:
        raise AuthError(str(exc))
    except asyncio.IncompleteReadError:
        raise AuthError("peer closed during the handshake")
    return AsyncChannel(reader, writer, handshake.ciphers(),
                        max_frame=max_frame, send_queue=send_queue)


async def connect_channel(host: str, port: int,
                          secret: Optional[bytes],
                          max_frame: int = MAX_FRAME,
                          connect_timeout: float = 5.0,
                          send_queue: int = SEND_QUEUE_SIZE,
                          ) -> AsyncChannel:
    """Connect + client side of the v3 handshake on the event loop."""
    loop = asyncio.get_running_loop()
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=connect_timeout)
    sock = writer.get_extra_info("socket")
    if sock is not None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        handshake = ClientHandshake(secret)
        banner = await asyncio.wait_for(_recv_raw(reader),
                                        timeout=connect_timeout)
        if secret:
            response = handshake.respond(banner)
        else:
            response = await loop.run_in_executor(None,
                                                  handshake.respond,
                                                  banner)
        await _send_raw(writer, response)
        try:
            confirm = await asyncio.wait_for(_recv_raw(reader),
                                             timeout=connect_timeout)
        except asyncio.IncompleteReadError:
            raise AuthError("worker rejected the handshake "
                            "(connection closed)")
        handshake.verify(confirm)
    except (HandshakeError, asyncio.TimeoutError) as exc:
        writer.close()
        if isinstance(exc, asyncio.TimeoutError):
            raise ConnectionError("handshake timed out")
        raise AuthError(str(exc))
    except (AuthError, ConnectionError, OSError,
            asyncio.IncompleteReadError) as exc:
        writer.close()
        if isinstance(exc, asyncio.IncompleteReadError):
            raise AuthError("worker closed during the handshake")
        raise
    ciphers = handshake.ciphers()
    if secret is not None and not ciphers.authenticated:
        # Unreachable while ClientHandshake refuses downgrades, but a
        # secret-configured client must never ship work over an
        # unauthenticated session regardless of handshake internals.
        writer.close()
        raise AuthError("handshake completed without authentication "
                        "despite a configured secret")
    return AsyncChannel(reader, writer, ciphers,
                        max_frame=max_frame, send_queue=send_queue)

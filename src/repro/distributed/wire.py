"""Protocol v3: the compact binary wire encoding ("kpack").

Protocol v2 shipped every frame as a pickle, which has two costs the
fabric can no longer afford:

* **security** — ``pickle.loads`` on network bytes is arbitrary code
  execution; the HMAC handshake authenticated peers but one leaked
  secret (or an open worker) handed an attacker the process;
* **size/speed** — pickle frames carry class descriptors and memo
  machinery per frame; heartbeats were ~60 bytes of pickle for one
  integer.

v3 replaces pickle on the data plane with a purpose-built codec:

Frame layout
------------

Every frame is one 8-byte struct-packed header followed by a body::

    !BBHI  =  version (3) | type code | flags | body length

The type code selects a body layout.  Hot frame types get dedicated
struct-packed bodies (a ``pong`` body is 8 bytes, down from ~60):

==============  ==========================================================
type            body
==============  ==========================================================
``ping/pong``   ``!Q`` heartbeat sequence number
``result``      varstr item_id + ``!I`` offset + kpack value
``item-done``   varstr item_id + kpack cache-delta/report dict
``update``      ``!Q`` update seq + varstr cve_id + varbytes payload
``ack``         ``!Q`` update seq + ``!B`` status + varstr member_id
(all others)    kpack of the message dict minus its ``type`` key
==============  ==========================================================

kpack values
------------

A tagged, length-prefixed binary tree over exactly the types the fabric
ships: ``None``/bool/int/float/str/bytes/list/tuple/dict/set/frozenset
plus a **closed registry** of repro classes (specs in, results + traces
+ analysis reports + cache deltas out).  Registered instances encode as
``registry id + state dict`` and decode through ``object.__new__`` on
the registered class — the wire can only ever name classes in
:data:`REGISTRY`, so untrusted bytes choose *data shapes*, never code.
Integers are zigzag LEB128 varints (a heartbeat seq is 1-2 bytes), and
collection counts are validated against the remaining buffer before
anything is allocated, so a corrupt count cannot balloon memory.

Every malformed input — truncated buffer, unknown tag, bad UTF-8, an
unregistered class id, trailing garbage, absurd counts — decodes to
:class:`WireError` (a :class:`~repro.errors.ReproError`), never a raw
``struct.error``/``UnicodeDecodeError``; the session layer treats it
as a protocol violation and drops the peer.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError

#: bump when the frame vocabulary or kpack tags change incompatibly
#: (3: binary kpack frames + encrypted sessions; 2: pickled frames
#: behind an HMAC handshake; 1: bare pickled frames)
WIRE_VERSION = 3

#: frame header: version, type code, flags, body length
FRAME_HEADER = struct.Struct("!BBHI")

_U64 = struct.Struct("!Q")
_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")
_ACK_HEAD = struct.Struct("!QB")


class WireError(ReproError):
    """Malformed or unencodable v3 wire data."""


# --------------------------------------------------------------------------
# Frame types
# --------------------------------------------------------------------------

HELLO = "hello"
READY = "ready"
ITEM = "item"
RESULT = "result"
ITEM_DONE = "item-done"
ERROR = "error"
PING = "ping"
PONG = "pong"
SHUTDOWN = "shutdown"
#: fleet-dispatch plane (coordinator -> member and back)
UPDATE = "update"
ACK = "ack"

_TYPE_CODES: Dict[str, int] = {
    HELLO: 1, READY: 2, ITEM: 3, RESULT: 4, ITEM_DONE: 5, ERROR: 6,
    PING: 7, PONG: 8, SHUTDOWN: 9, UPDATE: 10, ACK: 11,
}
_TYPE_NAMES = {code: name for name, code in _TYPE_CODES.items()}


# --------------------------------------------------------------------------
# kpack: tagged binary values
# --------------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_SET = 0x0A
_T_FROZENSET = 0x0B
_T_OBJECT = 0x0C
_T_ENUM = 0x0D

#: the closed set of classes allowed to cross the wire, in a stable
#: order (ids are indices — append only, never reorder).  Everything
#: the evaluation fabric ships lives here: specs in, results out.
REGISTRY: Tuple[Tuple[str, str], ...] = (
    ("repro.evaluation.specs", "CveCategory"),
    ("repro.evaluation.specs", "ProbeCall"),
    ("repro.evaluation.specs", "ExploitSpec"),
    ("repro.evaluation.specs", "Table1Info"),
    ("repro.evaluation.specs", "CveSpec"),
    ("repro.evaluation.archetypes", "ProbeSpec"),
    ("repro.evaluation.harness", "CveResult"),
    ("repro.pipeline.stage", "StageContext"),
    ("repro.pipeline.stage", "StageReport"),
    ("repro.pipeline.trace", "Trace"),
    ("repro.analysis.model", "Finding"),
    ("repro.analysis.model", "Evidence"),
    ("repro.analysis.model", "AnalysisReport"),
    ("repro.compiler.cache", "CacheStats"),
)

_classes_by_id: List[Optional[type]] = []
_ids_by_class: Dict[type, int] = {}


def _load_registry() -> None:
    import importlib

    if _classes_by_id:
        return
    for class_id, (module_name, qualname) in enumerate(REGISTRY):
        module = importlib.import_module(module_name)
        cls = getattr(module, qualname)
        _classes_by_id.append(cls)
        _ids_by_class[cls] = class_id


def _registered_id(cls: type) -> Optional[int]:
    if not _classes_by_id:
        _load_registry()
    return _ids_by_class.get(cls)


def _registered_class(class_id: int) -> type:
    if not _classes_by_id:
        _load_registry()
    if not 0 <= class_id < len(_classes_by_id):
        raise WireError("unregistered wire class id %d" % class_id)
    cls = _classes_by_id[class_id]
    assert cls is not None
    return cls


def _pack_varint(out: bytearray, value: int) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _pack_zigzag(out: bytearray, value: int) -> None:
    """Signed int -> unsigned zigzag (works on arbitrary precision)."""
    _pack_varint(out, (value << 1) if value >= 0
                 else ((-value) << 1) - 1)


def _unpack_varint(buf: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise WireError("truncated varint")
        if shift > 10009:  # arbitrary-precision ints, but not forever
            raise WireError("varint too long")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _unpack_zigzag(buf: bytes, pos: int) -> Tuple[int, int]:
    raw, pos = _unpack_varint(buf, pos)
    if raw & 1:
        return -((raw + 1) >> 1), pos
    return raw >> 1, pos


def _kpack_value(out: bytearray, value: Any) -> None:
    # bool before int: bool is an int subclass
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif type(value) is int:
        out.append(_T_INT)
        _pack_zigzag(out, value)
    elif type(value) is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif type(value) is str:
        data = value.encode("utf-8")
        out.append(_T_STR)
        _pack_varint(out, len(data))
        out += data
    elif type(value) in (bytes, bytearray):
        out.append(_T_BYTES)
        _pack_varint(out, len(value))
        out += value
    elif type(value) is list:
        out.append(_T_LIST)
        _pack_varint(out, len(value))
        for item in value:
            _kpack_value(out, item)
    elif type(value) is tuple:
        out.append(_T_TUPLE)
        _pack_varint(out, len(value))
        for item in value:
            _kpack_value(out, item)
    elif type(value) is dict:
        out.append(_T_DICT)
        _pack_varint(out, len(value))
        for key, item in value.items():
            _kpack_value(out, key)
            _kpack_value(out, item)
    elif type(value) in (set, frozenset):
        out.append(_T_SET if type(value) is set else _T_FROZENSET)
        _pack_varint(out, len(value))
        # deterministic order so equal sets encode identically
        for item in sorted(value, key=repr):
            _kpack_value(out, item)
    else:
        class_id = _registered_id(type(value))
        if class_id is None:
            raise WireError(
                "%s is not wire-encodable (not a plain value and "
                "%s.%s is not in the v3 registry)"
                % (type(value).__name__, type(value).__module__,
                   type(value).__qualname__))
        import enum

        if isinstance(value, enum.Enum):
            out.append(_T_ENUM)
            _pack_varint(out, class_id)
            _kpack_value(out, value.value)
            return
        out.append(_T_OBJECT)
        _pack_varint(out, class_id)
        getstate = getattr(value, "__getstate__", None)
        state = getstate() if callable(getstate) else dict(value.__dict__)
        if not isinstance(state, dict):
            raise WireError("%s.__getstate__ did not return a dict"
                            % type(value).__name__)
        _kpack_value(out, state)


def _guard_count(count: int, buf: bytes, pos: int, per_item: int) -> None:
    """A claimed element count must fit in the remaining bytes (each
    element costs at least ``per_item`` bytes), so a corrupted count
    cannot trigger a huge allocation before decoding fails."""
    if count < 0 or count * per_item > len(buf) - pos:
        raise WireError("collection claims %d elements with %d bytes "
                        "left" % (count, len(buf) - pos))


def _kunpack_value(buf: bytes, pos: int, depth: int = 0) -> Tuple[Any, int]:
    if depth > 100:
        raise WireError("kpack nesting deeper than 100")
    if pos >= len(buf):
        raise WireError("truncated value")
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _unpack_zigzag(buf, pos)
    if tag == _T_FLOAT:
        if pos + 8 > len(buf):
            raise WireError("truncated float")
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T_STR:
        length, pos = _unpack_varint(buf, pos)
        _guard_count(length, buf, pos, 1)
        try:
            return buf[pos:pos + length].decode("utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise WireError("undecodable string: %s" % exc)
    if tag == _T_BYTES:
        length, pos = _unpack_varint(buf, pos)
        _guard_count(length, buf, pos, 1)
        return buf[pos:pos + length], pos + length
    if tag in (_T_LIST, _T_TUPLE, _T_SET, _T_FROZENSET):
        count, pos = _unpack_varint(buf, pos)
        _guard_count(count, buf, pos, 1)
        items = []
        for _ in range(count):
            item, pos = _kunpack_value(buf, pos, depth + 1)
            items.append(item)
        if tag == _T_LIST:
            return items, pos
        if tag == _T_TUPLE:
            return tuple(items), pos
        try:
            return (set(items) if tag == _T_SET
                    else frozenset(items)), pos
        except TypeError as exc:
            raise WireError("unhashable set element: %s" % exc)
    if tag == _T_DICT:
        count, pos = _unpack_varint(buf, pos)
        _guard_count(count, buf, pos, 2)
        result: Dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _kunpack_value(buf, pos, depth + 1)
            value, pos = _kunpack_value(buf, pos, depth + 1)
            try:
                result[key] = value
            except TypeError as exc:
                raise WireError("unhashable dict key: %s" % exc)
        return result, pos
    if tag == _T_ENUM:
        class_id, pos = _unpack_varint(buf, pos)
        cls = _registered_class(class_id)
        raw, pos = _kunpack_value(buf, pos, depth + 1)
        try:
            return cls(raw), pos
        except (ValueError, TypeError) as exc:
            raise WireError("bad enum value for %s: %s"
                            % (cls.__name__, exc))
    if tag == _T_OBJECT:
        class_id, pos = _unpack_varint(buf, pos)
        cls = _registered_class(class_id)
        state, pos = _kunpack_value(buf, pos, depth + 1)
        if not isinstance(state, dict):
            raise WireError("object state for %s is %s, not a dict"
                            % (cls.__name__, type(state).__name__))
        instance = object.__new__(cls)
        setstate = getattr(instance, "__setstate__", None)
        try:
            if callable(setstate):
                setstate(state)
            else:
                instance.__dict__.update(state)
        except Exception as exc:
            raise WireError("rejected state for %s: %s"
                            % (cls.__name__, exc))
        return instance, pos
    raise WireError("unknown kpack tag 0x%02x" % tag)


def kpack(value: Any) -> bytes:
    """Encode one value tree; :class:`WireError` on foreign types."""
    out = bytearray()
    try:
        _kpack_value(out, value)
    except RecursionError:
        raise WireError("value tree too deep to encode")
    return bytes(out)


def kunpack(data: bytes) -> Any:
    """Decode one value tree; :class:`WireError` on any malformation
    (including trailing bytes — a frame body is exactly one value)."""
    try:
        value, pos = _kunpack_value(data, 0)
    except RecursionError:
        raise WireError("kpack nesting too deep to decode")
    if pos != len(data):
        raise WireError("%d trailing bytes after value" % (len(data) - pos))
    return value


# --------------------------------------------------------------------------
# Frame bodies
# --------------------------------------------------------------------------


def _varstr(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    _pack_varint(out, len(data))
    out += data


def _read_varstr(buf: bytes, pos: int) -> Tuple[str, int]:
    length, pos = _unpack_varint(buf, pos)
    _guard_count(length, buf, pos, 1)
    try:
        return buf[pos:pos + length].decode("utf-8"), pos + length
    except UnicodeDecodeError as exc:
        raise WireError("undecodable string field: %s" % exc)


def _pack_seq_body(message: Dict[str, Any]) -> bytes:
    seq = message.get("seq") or 0
    if not isinstance(seq, int) or not 0 <= seq < 1 << 64:
        raise WireError("heartbeat seq %r is not a u64" % (seq,))
    return _U64.pack(seq)


def _unpack_seq_body(body: bytes) -> Dict[str, Any]:
    if len(body) != _U64.size:
        raise WireError("heartbeat body is %d bytes, not 8" % len(body))
    return {"seq": _U64.unpack(body)[0]}


def _pack_result_body(message: Dict[str, Any]) -> bytes:
    out = bytearray()
    _varstr(out, str(message.get("item_id") or ""))
    offset = message.get("offset") or 0
    if not isinstance(offset, int) or not 0 <= offset < 1 << 32:
        raise WireError("result offset %r is not a u32" % (offset,))
    out += _U32.pack(offset)
    rest = {k: v for k, v in message.items()
            if k not in ("type", "item_id", "offset")}
    _kpack_value(out, rest)
    return bytes(out)


def _unpack_result_body(body: bytes) -> Dict[str, Any]:
    item_id, pos = _read_varstr(body, 0)
    if pos + _U32.size > len(body):
        raise WireError("truncated result header")
    offset = _U32.unpack_from(body, pos)[0]
    rest, pos = _kunpack_value(body, pos + _U32.size)
    if pos != len(body):
        raise WireError("trailing bytes after result body")
    if not isinstance(rest, dict):
        raise WireError("result payload is not a dict")
    message = dict(rest)
    message.update({"item_id": item_id, "offset": offset})
    return message


def _pack_item_done_body(message: Dict[str, Any]) -> bytes:
    out = bytearray()
    _varstr(out, str(message.get("item_id") or ""))
    rest = {k: v for k, v in message.items()
            if k not in ("type", "item_id")}
    _kpack_value(out, rest)
    return bytes(out)


def _unpack_item_done_body(body: bytes) -> Dict[str, Any]:
    item_id, pos = _read_varstr(body, 0)
    rest, pos = _kunpack_value(body, pos)
    if pos != len(body):
        raise WireError("trailing bytes after item-done body")
    if not isinstance(rest, dict):
        raise WireError("item-done payload is not a dict")
    message = dict(rest)
    message["item_id"] = item_id
    return message


def _pack_update_body(message: Dict[str, Any]) -> bytes:
    seq = message.get("seq") or 0
    if not isinstance(seq, int) or not 0 <= seq < 1 << 64:
        raise WireError("update seq %r is not a u64" % (seq,))
    out = bytearray(_U64.pack(seq))
    _varstr(out, str(message.get("cve_id") or ""))
    payload = message.get("payload") or b""
    if not isinstance(payload, (bytes, bytearray)):
        raise WireError("update payload must be bytes")
    _pack_varint(out, len(payload))
    out += payload
    return bytes(out)


def _unpack_update_body(body: bytes) -> Dict[str, Any]:
    if len(body) < _U64.size:
        raise WireError("truncated update body")
    seq = _U64.unpack_from(body, 0)[0]
    cve_id, pos = _read_varstr(body, _U64.size)
    length, pos = _unpack_varint(body, pos)
    _guard_count(length, body, pos, 1)
    if pos + length != len(body):
        raise WireError("update payload length mismatch")
    return {"seq": seq, "cve_id": cve_id,
            "payload": body[pos:pos + length]}


def _pack_ack_body(message: Dict[str, Any]) -> bytes:
    seq = message.get("seq") or 0
    status = message.get("status") or 0
    if not isinstance(seq, int) or not 0 <= seq < 1 << 64:
        raise WireError("ack seq %r is not a u64" % (seq,))
    if not isinstance(status, int) or not 0 <= status < 256:
        raise WireError("ack status %r is not a u8" % (status,))
    out = bytearray(_ACK_HEAD.pack(seq, status))
    _varstr(out, str(message.get("member_id") or ""))
    return bytes(out)


def _unpack_ack_body(body: bytes) -> Dict[str, Any]:
    if len(body) < _ACK_HEAD.size:
        raise WireError("truncated ack body")
    seq, status = _ACK_HEAD.unpack_from(body, 0)
    member_id, pos = _read_varstr(body, _ACK_HEAD.size)
    if pos != len(body):
        raise WireError("trailing bytes after ack body")
    return {"seq": seq, "status": status, "member_id": member_id}


def _pack_generic_body(message: Dict[str, Any]) -> bytes:
    rest = {k: v for k, v in message.items() if k != "type"}
    out = bytearray()
    _kpack_value(out, rest)
    return bytes(out)


def _unpack_generic_body(body: bytes) -> Dict[str, Any]:
    rest = kunpack(body)
    if not isinstance(rest, dict):
        raise WireError("frame body is not a message dict")
    for key in rest:
        if not isinstance(key, str):
            raise WireError("message field name %r is not a string"
                            % (key,))
    return dict(rest)


_BODY_CODECS: Dict[str, Tuple[Callable[[Dict[str, Any]], bytes],
                              Callable[[bytes], Dict[str, Any]]]] = {
    PING: (_pack_seq_body, _unpack_seq_body),
    PONG: (_pack_seq_body, _unpack_seq_body),
    RESULT: (_pack_result_body, _unpack_result_body),
    ITEM_DONE: (_pack_item_done_body, _unpack_item_done_body),
    UPDATE: (_pack_update_body, _unpack_update_body),
    ACK: (_pack_ack_body, _unpack_ack_body),
}


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One message dict -> header + body bytes (not length-prefixed;
    the session layer frames and encrypts).  :class:`WireError` when
    the message carries an unknown type or unencodable values."""
    kind = message.get("type")
    if not isinstance(kind, str) or kind not in _TYPE_CODES:
        raise WireError("unknown frame type %r" % (kind,))
    pack, _unpack = _BODY_CODECS.get(
        kind, (_pack_generic_body, _unpack_generic_body))
    try:
        body = pack(message)
    except RecursionError:
        raise WireError("message too deep to encode")
    return FRAME_HEADER.pack(WIRE_VERSION, _TYPE_CODES[kind], 0,
                             len(body)) + body


def decode_frame(data: bytes) -> Dict[str, Any]:
    """Header + body bytes -> message dict (with its ``type`` key).

    Raises :class:`WireError` on any malformation, including a header
    claiming a different protocol version — the caller turns that into
    a clear version-mismatch rejection.
    """
    if len(data) < FRAME_HEADER.size:
        raise WireError("frame of %d bytes is shorter than the %d-byte "
                        "header" % (len(data), FRAME_HEADER.size))
    version, code, _flags, body_len = FRAME_HEADER.unpack_from(data, 0)
    if version != WIRE_VERSION:
        raise WireError(
            "peer sent protocol v%d frames; this side speaks v%d "
            "(upgrade both ends of the fabric)" % (version, WIRE_VERSION))
    body = data[FRAME_HEADER.size:]
    if body_len != len(body):
        raise WireError("header claims %d body bytes, frame carries %d"
                        % (body_len, len(body)))
    kind = _TYPE_NAMES.get(code)
    if kind is None:
        raise WireError("unknown frame type code %d" % code)
    _pack, unpack = _BODY_CODECS.get(
        kind, (_pack_generic_body, _unpack_generic_body))
    try:
        message = unpack(bytes(body))
    except WireError:
        raise
    except RecursionError:
        raise WireError("frame body too deep to decode")
    except Exception as exc:  # never leak a raw struct/unicode error
        raise WireError("undecodable %s body: %s: %s"
                        % (kind, type(exc).__name__, exc))
    message["type"] = kind
    return message

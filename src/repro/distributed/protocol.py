"""Length-prefixed TCP framing for the distributed evaluation fabric.

One frame is an 8-byte big-endian payload length followed by a pickled
message dict.  Every message carries a ``"type"`` key; the small set of
types below is the whole wire vocabulary between a coordinator and a
worker:

==============  =======================  ================================
type            direction                meaning
==============  =======================  ================================
``hello``       coordinator -> worker    handshake: protocol version,
                                         disk-cache config (warm start)
``ready``       worker -> coordinator    handshake accepted (pid rides
                                         along for diagnostics)
``item``        coordinator -> worker    one work item: a kernel version
                                         plus an ordered list of CveSpecs
``result``      worker -> coordinator    **streamed** per finished CVE:
                                         the full CveResult, trace
                                         included, as soon as it exists
``item-done``   worker -> coordinator    the item finished; carries the
                                         item's cache-stats delta
``error``       worker -> coordinator    the item raised; carries the
                                         traceback text
``ping``        coordinator -> worker    heartbeat probe
``pong``        worker -> coordinator    heartbeat answer
``shutdown``    coordinator -> worker    drain and close the session
==============  =======================  ================================

Payloads are pickles because everything that crosses the wire — specs
in, ``CveResult`` + ``Trace`` + ``CacheStats`` out — is already the
plain picklable data the local ``ProcessPoolExecutor`` path ships
today.  That also means the fabric trusts its peers exactly as much as
a process pool trusts its forked children: run workers only on hosts
you would run the evaluation on directly.

``MAX_FRAME`` bounds a single frame so a corrupted length prefix cannot
make the receiver allocate unbounded memory; both sides treat an
oversized frame as a protocol error and drop the connection.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Dict, Optional

from repro.errors import ReproError

#: bump when the message vocabulary changes incompatibly
PROTOCOL_VERSION = 1

#: one frame may not exceed this many payload bytes (64 MiB)
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct("!Q")

HELLO = "hello"
READY = "ready"
ITEM = "item"
RESULT = "result"
ITEM_DONE = "item-done"
ERROR = "error"
PING = "ping"
PONG = "pong"
SHUTDOWN = "shutdown"


class ProtocolError(ReproError):
    """A malformed, oversized, or version-incompatible frame."""


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Pickle ``message`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise ProtocolError("frame of %d bytes exceeds MAX_FRAME (%d)"
                            % (len(payload), MAX_FRAME))
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` means the peer closed cleanly.

    A connection that dies mid-frame raises ``ConnectionError`` (the
    caller treats it like any other lost worker); a frame that is not a
    message dict raises :class:`ProtocolError`.
    """
    header = _recv_exactly(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError("incoming frame claims %d bytes "
                            "(MAX_FRAME is %d)" % (length, MAX_FRAME))
    payload = _recv_exactly(sock, length)
    return _decode(payload)  # type: ignore[arg-type]


class MessageStream:
    """A buffered reader that survives socket timeouts mid-frame.

    The coordinator reads with a heartbeat timeout; a timeout can
    strike after part of a frame has arrived.  A naive reader would
    drop those bytes and desynchronize the stream, so this one keeps
    partial frames in a buffer across ``socket.timeout`` raises —
    the next :meth:`recv` continues exactly where the last one left
    off.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buf = bytearray()

    def recv(self) -> Optional[Dict[str, Any]]:
        """One message; ``None`` on clean EOF; ``socket.timeout``
        propagates with the partial frame preserved."""
        while True:
            if len(self._buf) >= _HEADER.size:
                (length,) = _HEADER.unpack(bytes(self._buf[:_HEADER.size]))
                if length > MAX_FRAME:
                    raise ProtocolError(
                        "incoming frame claims %d bytes (MAX_FRAME is %d)"
                        % (length, MAX_FRAME))
                end = _HEADER.size + length
                if len(self._buf) >= end:
                    payload = bytes(self._buf[_HEADER.size:end])
                    del self._buf[:end]
                    return _decode(payload)
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._buf:
                    raise ConnectionError("peer closed mid-frame")
                return None
            self._buf += chunk


def _decode(payload: bytes) -> Dict[str, Any]:
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError("undecodable frame: %s" % exc)
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame is not a typed message: %r"
                            % type(message).__name__)
    return message


def _recv_exactly(sock: socket.socket, count: int,
                  allow_eof: bool = False) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ConnectionError("peer closed mid-frame (%d of %d bytes)"
                                  % (count - remaining, count))
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def parse_address(address: str, allow_zero: bool = False) -> tuple:
    """``"host:port"`` -> ``(host, port)`` with validation.

    ``allow_zero`` admits port 0 — valid for a *listening* worker
    (bind an ephemeral port), never for a coordinator connecting out.
    """
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ProtocolError("worker address %r is not host:port" % address)
    try:
        port = int(port_text)
    except ValueError:
        raise ProtocolError("worker address %r has a non-numeric port"
                            % address)
    if not (0 if allow_zero else 1) <= port < 65536:
        raise ProtocolError("worker address %r port out of range" % address)
    return host, port

"""Length-prefixed TCP framing for the distributed evaluation fabric.

One frame is an 8-byte big-endian payload length followed by a pickled
message dict.  Every message carries a ``"type"`` key; the small set of
types below is the whole wire vocabulary between a coordinator and a
worker:

==============  =======================  ================================
type            direction                meaning
==============  =======================  ================================
``hello``       coordinator -> worker    handshake: protocol version,
                                         disk-cache config (warm start)
``ready``       worker -> coordinator    handshake accepted (pid rides
                                         along for diagnostics)
``item``        coordinator -> worker    one work item: a kernel version
                                         plus an ordered list of CveSpecs
``result``      worker -> coordinator    **streamed** per finished CVE:
                                         the full CveResult, trace
                                         included, as soon as it exists
``item-done``   worker -> coordinator    the item finished; carries the
                                         item's cache-stats delta
``error``       worker -> coordinator    the item raised; carries the
                                         traceback text
``ping``        coordinator -> worker    heartbeat probe
``pong``        worker -> coordinator    heartbeat answer
``shutdown``    coordinator -> worker    drain and close the session
==============  =======================  ================================

Payloads are pickles because everything that crosses the wire — specs
in, ``CveResult`` + ``Trace`` + ``CacheStats`` out — is already the
plain picklable data the local ``ProcessPoolExecutor`` path ships
today.  Unpickling attacker bytes is arbitrary code execution, so a
worker started with a shared secret authenticates the peer *before*
the first pickled frame is read: the worker sends a raw (non-pickle)
banner, both sides exchange nonces, and each proves knowledge of the
secret with an HMAC-SHA256 response over the other's nonce
(domain-separated so a worker response can never be replayed as a
client response).  A peer that fails the exchange is dropped without
ever reaching ``pickle.loads``.  Without a secret the fabric trusts
its peers exactly as much as a process pool trusts its forked
children: run open workers only on hosts you would run the evaluation
on directly.

``MAX_FRAME`` bounds a single frame so a corrupted length prefix cannot
make the receiver allocate unbounded memory; both sides treat an
oversized frame as a protocol error and drop the connection.
"""

from __future__ import annotations

import hmac
import os
import pickle
import socket
import struct
from typing import Any, Dict, Optional

from repro.errors import ReproError

#: bump when the message vocabulary changes incompatibly
#: (2: authenticated handshake precedes the hello frame)
PROTOCOL_VERSION = 2

#: one frame may not exceed this many payload bytes (64 MiB)
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct("!Q")

HELLO = "hello"
READY = "ready"
ITEM = "item"
RESULT = "result"
ITEM_DONE = "item-done"
ERROR = "error"
PING = "ping"
PONG = "pong"
SHUTDOWN = "shutdown"


class ProtocolError(ReproError):
    """A malformed, oversized, or version-incompatible frame."""


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Pickle ``message`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise ProtocolError("frame of %d bytes exceeds MAX_FRAME (%d)"
                            % (len(payload), MAX_FRAME))
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` means the peer closed cleanly.

    A connection that dies mid-frame raises ``ConnectionError`` (the
    caller treats it like any other lost worker); a frame that is not a
    message dict raises :class:`ProtocolError`.
    """
    header = _recv_exactly(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError("incoming frame claims %d bytes "
                            "(MAX_FRAME is %d)" % (length, MAX_FRAME))
    payload = _recv_exactly(sock, length)
    return _decode(payload)  # type: ignore[arg-type]


class MessageStream:
    """A buffered reader that survives socket timeouts mid-frame.

    The coordinator reads with a heartbeat timeout; a timeout can
    strike after part of a frame has arrived.  A naive reader would
    drop those bytes and desynchronize the stream, so this one keeps
    partial frames in a buffer across ``socket.timeout`` raises —
    the next :meth:`recv` continues exactly where the last one left
    off.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buf = bytearray()

    def recv(self) -> Optional[Dict[str, Any]]:
        """One message; ``None`` on clean EOF; ``socket.timeout``
        propagates with the partial frame preserved."""
        while True:
            if len(self._buf) >= _HEADER.size:
                (length,) = _HEADER.unpack(bytes(self._buf[:_HEADER.size]))
                if length > MAX_FRAME:
                    raise ProtocolError(
                        "incoming frame claims %d bytes (MAX_FRAME is %d)"
                        % (length, MAX_FRAME))
                end = _HEADER.size + length
                if len(self._buf) >= end:
                    payload = bytes(self._buf[_HEADER.size:end])
                    del self._buf[:end]
                    return _decode(payload)
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._buf:
                    raise ConnectionError("peer closed mid-frame")
                return None
            self._buf += chunk


def _decode(payload: bytes) -> Dict[str, Any]:
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError("undecodable frame: %s" % exc)
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame is not a typed message: %r"
                            % type(message).__name__)
    return message


def _recv_exactly(sock: socket.socket, count: int,
                  allow_eof: bool = False) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ConnectionError("peer closed mid-frame (%d of %d bytes)"
                                  % (count - remaining, count))
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# --------------------------------------------------------------------------
# Authenticated handshake (precedes every pickled frame)
# --------------------------------------------------------------------------

#: environment variable holding the fabric's shared secret
SECRET_ENV = "KSPLICE_WORKER_SECRET"

#: raw banner bytes the worker sends immediately on accept
AUTH_NONE = b"\x00"
AUTH_REQUIRED = b"\x01"

#: nonce and digest sizes for the challenge/response
NONCE_SIZE = 16
_DIGEST_SIZE = 32

#: raw (pre-pickle) frames are tiny; anything bigger is an attack
_MAX_RAW_FRAME = 1024

#: domain separation so a worker's proof cannot answer a client
#: challenge (and vice versa) even under an identical nonce
_CLIENT_DOMAIN = b"ksplice-fabric-client:"
_WORKER_DOMAIN = b"ksplice-fabric-worker:"


class AuthError(ProtocolError):
    """The peer failed (or refused) the shared-secret handshake."""


def default_secret() -> Optional[bytes]:
    """The fabric secret from ``KSPLICE_WORKER_SECRET``, if set."""
    value = os.environ.get(SECRET_ENV)
    if not value:
        return None
    return value.encode("utf-8")


def send_raw(sock: socket.socket, payload: bytes) -> None:
    """One length-prefixed frame of raw bytes (no pickling)."""
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_raw(sock: socket.socket) -> bytes:
    """Read one raw frame, bounded by ``_MAX_RAW_FRAME``.

    Used exclusively before authentication completes, so the bound is
    tight: a peer that claims a large frame here is not speaking the
    protocol and the connection is dropped.
    """
    header = _recv_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)  # type: ignore[arg-type]
    if length > _MAX_RAW_FRAME:
        raise AuthError("pre-auth frame claims %d bytes (max %d)"
                        % (length, _MAX_RAW_FRAME))
    payload = _recv_exactly(sock, length)
    return payload  # type: ignore[return-value]


def _proof(secret: bytes, domain: bytes, nonce: bytes) -> bytes:
    return hmac.new(secret, domain + nonce, "sha256").digest()


def worker_auth_accept(sock: socket.socket,
                       secret: Optional[bytes]) -> None:
    """Worker side: authenticate the connecting client.

    Sends the banner first so an old (v1) coordinator fails fast with
    a recognizable error instead of a pickle decode error.  With a
    secret configured, the worker challenges the client and *also*
    proves itself, so a client never sends work to an impostor worker.
    Raises :class:`AuthError` (caller drops the connection) before any
    pickled frame has been touched.
    """
    if secret is None:
        send_raw(sock, AUTH_NONE)
        return
    worker_nonce = os.urandom(NONCE_SIZE)
    send_raw(sock, AUTH_REQUIRED + worker_nonce)
    response = recv_raw(sock)
    if len(response) != _DIGEST_SIZE + NONCE_SIZE:
        raise AuthError("malformed auth response (%d bytes)"
                        % len(response))
    client_proof = response[:_DIGEST_SIZE]
    client_nonce = response[_DIGEST_SIZE:]
    expected = _proof(secret, _CLIENT_DOMAIN, worker_nonce)
    if not hmac.compare_digest(client_proof, expected):
        raise AuthError("client failed the shared-secret challenge")
    send_raw(sock, _proof(secret, _WORKER_DOMAIN, client_nonce))


def worker_auth_connect(sock: socket.socket,
                        secret: Optional[bytes]) -> None:
    """Client side (coordinator/executor): answer the worker banner.

    Raises :class:`AuthError` when the worker demands a secret we do
    not have, when our secret is rejected (connection closed), or when
    the worker cannot prove *it* knows the secret.
    """
    banner = recv_raw(sock)
    if not banner:
        raise AuthError("worker sent an empty auth banner")
    if banner[:1] == AUTH_NONE:
        return
    if banner[:1] != AUTH_REQUIRED:
        raise AuthError("unrecognized auth banner %r" % banner[:1])
    if len(banner) != 1 + NONCE_SIZE:
        raise AuthError("malformed auth challenge (%d bytes)"
                        % len(banner))
    if secret is None:
        raise AuthError(
            "worker requires a shared secret; pass --secret or set "
            "%s" % SECRET_ENV)
    worker_nonce = banner[1:]
    client_nonce = os.urandom(NONCE_SIZE)
    send_raw(sock, _proof(secret, _CLIENT_DOMAIN, worker_nonce)
             + client_nonce)
    try:
        worker_proof = recv_raw(sock)
    except ConnectionError:
        raise AuthError("worker rejected the shared secret")
    expected = _proof(secret, _WORKER_DOMAIN, client_nonce)
    if not hmac.compare_digest(worker_proof, expected):
        raise AuthError("worker failed to prove the shared secret")


def parse_address(address: str, allow_zero: bool = False) -> tuple:
    """``"host:port"`` -> ``(host, port)`` with validation.

    ``allow_zero`` admits port 0 — valid for a *listening* worker
    (bind an ephemeral port), never for a coordinator connecting out.
    """
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ProtocolError("worker address %r is not host:port" % address)
    try:
        port = int(port_text)
    except ValueError:
        raise ProtocolError("worker address %r has a non-numeric port"
                            % address)
    if not (0 if allow_zero else 1) <= port < 65536:
        raise ProtocolError("worker address %r port out of range" % address)
    return host, port

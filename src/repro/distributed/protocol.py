"""Protocol v3 session layer: encrypted, length-prefixed binary frames.

This module is the **synchronous compatibility surface** of the v3
fabric.  The asyncio coordinator and worker (:mod:`.aio`,
:mod:`.coordinator`, :mod:`.worker`) are the scale path; everything
that still talks blocking sockets — :class:`~.executor.DistributedExecutor`,
:mod:`repro.fleet.remote`, tests — drives the same wire through
:class:`MessageStream` here, so both paths are byte-compatible on the
wire.

Wire stack, bottom up:

1. **Handshake** (cleartext, tightly bounded raw frames): the worker
   banners ``KSP3`` + mode; both sides run the
   :mod:`~repro.distributed.crypto` state machine — mutual HMAC proof
   + secret-derived keys when a shared secret is configured, anonymous
   DH otherwise.  A peer that fails is dropped before one data frame
   is parsed.  v2 peers (pickle fabric) are rejected with an explicit
   version-mismatch message on both sides.
2. **Records**: ``!I`` length prefix + ciphertext + 16-byte tag.  A
   record's plaintext is a *batch*: one or more ``!I``-length-prefixed
   frames sealed together, so a pipelined burst pays one keystream and
   one MAC instead of one per frame (the same trick TLS records play;
   it is the difference between crypto dominating the fabric's hot
   path and crypto disappearing into it).  Every record — all frame
   types, both directions — is encrypted and authenticated with the
   session keys; per-record sequence numbers prevent replay and
   reordering.  ``max_frame`` bounds **every** frame (v2 only bounded
   handshake frames): a peer claiming an oversized record or smuggling
   an oversized frame inside one raises :class:`ProtocolError` and is
   dropped before the payload is interpreted.
3. **Frames**: the compact binary encoding in
   :mod:`~repro.distributed.wire` — struct-packed headers, kpack
   bodies, a closed class registry.  ``pickle`` is gone from the data
   plane: no network byte ever reaches ``pickle.loads``.

``send_message``/``recv_message`` remain as *plaintext* frame helpers
for tests and diagnostics over trusted local socketpairs; real sessions
always go through a handshaken :class:`MessageStream`.
"""

from __future__ import annotations

import os
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from repro.distributed import wire
from repro.distributed.crypto import (
    MAX_HANDSHAKE_FRAME,
    CipherPair,
    ClientHandshake,
    FrameAuthError,
    HandshakeError,
    ServerHandshake,
)
from repro.distributed.wire import WireError
from repro.errors import ReproError

#: bump when the message vocabulary changes incompatibly
#: (3: binary kpack frames, encrypted sessions; 2: authenticated
#: handshake before pickled frames)
PROTOCOL_VERSION = 3

#: default per-record byte bound (64 MiB); every frame on a session is
#: checked against the session's limit, not just handshake frames
MAX_FRAME = 64 * 1024 * 1024

#: record length prefix; also the per-frame prefix inside a batch
_RECORD_HEADER = struct.Struct("!I")

#: most frames a writer coalesces into one sealed record
BATCH_FRAMES = 256

#: slack the record-length check allows beyond ``max_frame``: batch
#: frame prefixes (4 * BATCH_FRAMES) plus the auth tag, rounded up
_RECORD_SLACK = 2048


def pack_batch(frames) -> bytes:
    """Concatenate frames into one record plaintext (length-prefixed)."""
    return b"".join(_RECORD_HEADER.pack(len(frame)) + frame
                    for frame in frames)


def split_batch(blob: bytes, max_frame: int) -> list:
    """Record plaintext -> frames, validating every length."""
    frames = []
    pos = 0
    end = len(blob)
    if end == 0:
        raise ProtocolError("empty record")
    while pos < end:
        if end - pos < _RECORD_HEADER.size:
            raise ProtocolError("truncated frame prefix in record")
        (length,) = _RECORD_HEADER.unpack_from(blob, pos)
        pos += _RECORD_HEADER.size
        if length > max_frame:
            raise ProtocolError(
                "frame of %d bytes inside a record exceeds the "
                "session max_frame (%d); dropping the peer"
                % (length, max_frame))
        if end - pos < length:
            raise ProtocolError("truncated frame in record")
        frames.append(blob[pos:pos + length])
        pos += length
    return frames

# re-exported frame-type names (the wire vocabulary)
HELLO = wire.HELLO
READY = wire.READY
ITEM = wire.ITEM
RESULT = wire.RESULT
ITEM_DONE = wire.ITEM_DONE
ERROR = wire.ERROR
PING = wire.PING
PONG = wire.PONG
SHUTDOWN = wire.SHUTDOWN
UPDATE = wire.UPDATE
ACK = wire.ACK


class ProtocolError(ReproError):
    """A malformed, oversized, or version-incompatible frame."""


class AuthError(ProtocolError):
    """The peer failed (or refused) the v3 handshake."""


#: environment variable holding the fabric's shared secret
SECRET_ENV = "KSPLICE_WORKER_SECRET"


def default_secret() -> Optional[bytes]:
    """The fabric secret from ``KSPLICE_WORKER_SECRET``, if set."""
    value = os.environ.get(SECRET_ENV)
    if not value:
        return None
    return value.encode("utf-8")


def parse_address(address: str, allow_zero: bool = False) -> tuple:
    """``"host:port"`` -> ``(host, port)`` with validation.

    ``allow_zero`` admits port 0 — valid for a *listening* worker
    (bind an ephemeral port), never for a coordinator connecting out.
    """
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ProtocolError("worker address %r is not host:port" % address)
    try:
        port = int(port_text)
    except ValueError:
        raise ProtocolError("worker address %r has a non-numeric port"
                            % address)
    if not (0 if allow_zero else 1) <= port < 65536:
        raise ProtocolError("worker address %r port out of range" % address)
    return host, port


# --------------------------------------------------------------------------
# Raw (handshake) frames — cleartext, tightly bounded
# --------------------------------------------------------------------------


def send_raw(sock: socket.socket, payload: bytes) -> None:
    """One length-prefixed frame of raw bytes (handshake only)."""
    sock.sendall(_RECORD_HEADER.pack(len(payload)) + payload)


def recv_raw(sock: socket.socket) -> bytes:
    """Read one raw frame, bounded by ``MAX_HANDSHAKE_FRAME``.

    Used exclusively before the handshake completes, so the bound is
    tight: a peer that claims a large frame here is not speaking the
    protocol and the connection is dropped.
    """
    header = _recv_exactly(sock, _RECORD_HEADER.size)
    (length,) = _RECORD_HEADER.unpack(header)  # type: ignore[arg-type]
    if length > MAX_HANDSHAKE_FRAME:
        raise AuthError("pre-auth frame claims %d bytes (max %d)"
                        % (length, MAX_HANDSHAKE_FRAME))
    if length == 0:
        return b""
    return _recv_exactly(sock, length)  # type: ignore[return-value]


def _recv_exactly(sock: socket.socket, count: int,
                  allow_eof: bool = False) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ConnectionError("peer closed mid-frame (%d of %d bytes)"
                                  % (count - remaining, count))
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# --------------------------------------------------------------------------
# The session channel
# --------------------------------------------------------------------------


class MessageStream:
    """One side of an established v3 session over a blocking socket.

    Created by :func:`connect_stream` / :func:`accept_stream` (which
    run the handshake) or directly with ``ciphers=None`` for plaintext
    framing over a trusted local socketpair (tests).

    The reader keeps partial records in a buffer across
    ``socket.timeout`` raises — a heartbeat timeout mid-frame does not
    desynchronize the wire; the next :meth:`recv` continues exactly
    where the last one left off.  ``max_frame`` bounds **every**
    incoming record and outgoing frame.
    """

    def __init__(self, sock: socket.socket,
                 ciphers: Optional[CipherPair] = None,
                 max_frame: int = MAX_FRAME):
        self.sock = sock
        self.ciphers = ciphers
        self.max_frame = max_frame
        self._buf = bytearray()
        self._pending: list = []  # decoded messages from the last batch

    @property
    def encrypted(self) -> bool:
        return self.ciphers is not None

    @property
    def authenticated(self) -> bool:
        return self.ciphers is not None and self.ciphers.authenticated

    def send(self, message: Dict[str, Any]) -> None:
        """Encode, seal, and write one message as a one-frame record."""
        try:
            frame = wire.encode_frame(message)
        except WireError as exc:
            raise ProtocolError(str(exc))
        if len(frame) > self.max_frame:
            raise ProtocolError("frame of %d bytes exceeds the session "
                                "max_frame (%d)"
                                % (len(frame), self.max_frame))
        plain = pack_batch([frame])
        record = plain if self.ciphers is None \
            else self.ciphers.tx.seal(plain)
        self.sock.sendall(_RECORD_HEADER.pack(len(record)) + record)

    def recv(self) -> Optional[Dict[str, Any]]:
        """One message; ``None`` on clean EOF; ``socket.timeout``
        propagates with the partial record preserved."""
        while True:
            if self._pending:
                return self._pending.pop(0)
            if len(self._buf) >= _RECORD_HEADER.size:
                (length,) = _RECORD_HEADER.unpack(
                    bytes(self._buf[:_RECORD_HEADER.size]))
                self._check_length(length)
                end = _RECORD_HEADER.size + length
                if len(self._buf) >= end:
                    record = bytes(self._buf[_RECORD_HEADER.size:end])
                    del self._buf[:end]
                    self._pending = self._decode(record)
                    continue
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._buf:
                    raise ConnectionError("peer closed mid-frame")
                return None
            self._buf += chunk

    def _check_length(self, length: int) -> None:
        limit = self.max_frame + _RECORD_SLACK
        if length > limit:
            raise ProtocolError(
                "incoming record claims %d bytes (session max_frame is "
                "%d); dropping the peer" % (length, self.max_frame))

    def _decode(self, record: bytes) -> list:
        try:
            blob = record if self.ciphers is None \
                else self.ciphers.rx.open(record)
        except FrameAuthError as exc:
            raise ProtocolError(str(exc))
        frames = split_batch(blob, self.max_frame)
        try:
            return [wire.decode_frame(frame) for frame in frames]
        except WireError as exc:
            raise ProtocolError(str(exc))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def accept_stream(sock: socket.socket, secret: Optional[bytes],
                  max_frame: int = MAX_FRAME) -> MessageStream:
    """Worker side: run the v3 handshake, return the session channel.

    Raises :class:`AuthError` (caller drops the connection) before any
    data frame has been touched.
    """
    handshake = ServerHandshake(secret)
    try:
        send_raw(sock, handshake.banner())
        confirm = handshake.verify(recv_raw(sock))
        send_raw(sock, confirm)
    except HandshakeError as exc:
        raise AuthError(str(exc))
    return MessageStream(sock, handshake.ciphers(), max_frame=max_frame)


def connect_stream(sock: socket.socket, secret: Optional[bytes],
                   max_frame: int = MAX_FRAME) -> MessageStream:
    """Client side: run the v3 handshake, return the session channel.

    Raises :class:`AuthError` when the worker demands a secret we do
    not have, when our secret is rejected (connection closed mid-
    handshake), when the worker cannot prove *it* knows the secret, or
    when the peer speaks protocol v2.
    """
    handshake = ClientHandshake(secret)
    try:
        send_raw(sock, handshake.respond(recv_raw(sock)))
        try:
            confirm = recv_raw(sock)
        except ConnectionError:
            raise AuthError("worker rejected the handshake "
                            "(connection closed)")
        handshake.verify(confirm)
    except HandshakeError as exc:
        raise AuthError(str(exc))
    ciphers = handshake.ciphers()
    if secret is not None and not ciphers.authenticated:
        # Unreachable while ClientHandshake refuses downgrades, but a
        # secret-configured client must never ship work over an
        # unauthenticated session regardless of handshake internals.
        raise AuthError("handshake completed without authentication "
                        "despite a configured secret")
    return MessageStream(sock, ciphers, max_frame=max_frame)


# --------------------------------------------------------------------------
# Plaintext frame helpers (tests/diagnostics over trusted sockets only)
# --------------------------------------------------------------------------


def send_message(sock: socket.socket, message: Dict[str, Any],
                 max_frame: int = MAX_FRAME) -> None:
    """Write one *plaintext* v3 frame (no session crypto).

    Real fabric sessions are always encrypted; this exists for tests
    and local diagnostics over a socketpair.
    """
    try:
        frame = wire.encode_frame(message)
    except WireError as exc:
        raise ProtocolError(str(exc))
    if len(frame) > max_frame:
        raise ProtocolError("frame of %d bytes exceeds MAX_FRAME (%d)"
                            % (len(frame), max_frame))
    sock.sendall(_RECORD_HEADER.pack(len(frame)) + frame)


def recv_message(sock: socket.socket,
                 max_frame: int = MAX_FRAME) -> Optional[Dict[str, Any]]:
    """Read one *plaintext* v3 frame; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _RECORD_HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _RECORD_HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError("incoming frame claims %d bytes "
                            "(MAX_FRAME is %d)" % (length, max_frame))
    payload = _recv_exactly(sock, length) if length else b""
    try:
        return wire.decode_frame(payload)  # type: ignore[arg-type]
    except WireError as exc:
        raise ProtocolError(str(exc))


def encodable(value: Any) -> Tuple[bool, str]:
    """Can ``value`` cross the v3 wire?  ``(ok, reason)``."""
    try:
        wire.kpack(value)
        return True, ""
    except WireError as exc:
        return False, str(exc)

"""Fleet-scale update dispatch: one event loop, thousands of members.

The paper's endgame is fleet-wide rebootless updates; this module is
the dispatch layer that pushes a prepared update (the serialized k86
patch object, by CVE) to every *member* of a fleet and collects
acknowledgements, wave by wave.  It exists in two interchangeable
implementations so the scaling claim is measured, not asserted:

* :class:`RolloutDispatcher` — the v3 fabric: an asyncio server
  multiplexing every member session on **one event loop**, encrypted
  v3 frames, bounded per-member send queues (a slow member parks its
  wave task instead of ballooning dispatcher memory).
* :class:`ThreadedRolloutDispatcher` — the v2 architecture kept as the
  benchmark baseline: one OS thread per member over the blocking
  :class:`~repro.distributed.protocol.MessageStream` adapter.  Same
  wire bytes, same handshake — only the concurrency model differs.

A *member* here is the simulator in :func:`run_members_async`: it
handshakes, announces itself (``hello`` with a member id), then
acknowledges each ``update`` frame after CRC-checking the payload —
the cheapest honest stand-in for "apply the patch".  At 10k members a
single process would exhaust its fd table on the client side, so
:func:`spawn_member_shards` forks the simulated fleet into child
processes (the dispatcher process holds one fd per member; the
members' fds are spread across shards).
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.distributed import aio, protocol, wire
from repro.distributed.aio import AsyncChannel
from repro.distributed.protocol import MAX_FRAME, ProtocolError

#: status byte a member puts in its ``ack`` when the payload verified
ACK_OK = 0
ACK_CORRUPT = 1


@dataclass
class RolloutReport:
    """What one dispatch run did, with the numbers that matter."""

    backend: str
    members: int
    waves: int
    join_wall_s: float
    dispatch_wall_s: float
    acks: int = 0
    failures: int = 0
    encrypted: bool = True

    @property
    def member_updates(self) -> int:
        return self.acks

    @property
    def updates_per_s(self) -> float:
        if self.dispatch_wall_s <= 0:
            return 0.0
        return self.acks / self.dispatch_wall_s


def make_payload(data: bytes) -> bytes:
    """An update payload: 4-byte CRC header + the patch bytes.

    Members recompute the CRC on receipt — the cheapest honest
    stand-in for "verify, then apply the patch"."""
    return (zlib.crc32(data) & 0xFFFFFFFF).to_bytes(4, "big") + data


def verify_payload(payload: bytes) -> bool:
    if len(payload) < 4:
        return False
    claimed = int.from_bytes(payload[:4], "big")
    return claimed == (zlib.crc32(payload[4:]) & 0xFFFFFFFF)


# --------------------------------------------------------------------------
# The asyncio dispatcher (the v3 fabric)
# --------------------------------------------------------------------------


class RolloutDispatcher:
    """Dispatches update waves to a fleet over one asyncio event loop.

    Usage::

        dispatcher = RolloutDispatcher(expected=1000, secret=b"...")
        report = dispatcher.run(updates)   # blocks; owns asyncio.run

    ``run`` listens, waits for ``expected`` members to join, pushes
    every update to every member, and returns once all acks are in
    (or ``member_timeout`` passed without one).
    """

    def __init__(self, expected: int, secret: Optional[bytes],
                 host: str = "127.0.0.1", port: int = 0,
                 join_timeout: float = 120.0,
                 member_timeout: float = 60.0,
                 max_frame: int = MAX_FRAME,
                 send_queue: int = 16,
                 on_listen=None):
        self.expected = expected
        self.secret = secret
        self.host = host
        self.port = port
        self.join_timeout = join_timeout
        self.member_timeout = member_timeout
        self.max_frame = max_frame
        self.send_queue = send_queue
        self.on_listen = on_listen
        self._members: Dict[str, AsyncChannel] = {}
        self._joined: Optional[asyncio.Event] = None

    def run(self, updates: Sequence[Tuple[str, bytes]]) -> RolloutReport:
        return asyncio.run(self.run_async(updates))

    async def run_async(self,
                        updates: Sequence[Tuple[str, bytes]],
                        ) -> RolloutReport:
        self._joined = asyncio.Event()
        server = await asyncio.start_server(
            self._handle, self.host, self.port, backlog=4096)
        bound = server.sockets[0].getsockname()[:2]
        if self.on_listen is not None:
            self.on_listen(bound[0], bound[1])
        join_start = time.perf_counter()
        try:
            try:
                await asyncio.wait_for(self._joined.wait(),
                                       timeout=self.join_timeout)
            except asyncio.TimeoutError:
                raise ProtocolError(
                    "only %d of %d members joined within %.0fs"
                    % (len(self._members), self.expected,
                       self.join_timeout))
            join_wall = time.perf_counter() - join_start
            # Stop accepting: the fleet is complete, and a late dialer
            # must not skew the wave accounting.
            server.close()
            await server.wait_closed()

            dispatch_start = time.perf_counter()
            # Broadcast: every member gets the same update frames, so
            # encode each wave once and fan the bytes out (each
            # session still seals them under its own keys).
            frames = [wire.encode_frame(
                {"type": protocol.UPDATE, "seq": seq, "cve_id": cve_id,
                 "payload": payload})
                for seq, (cve_id, payload) in enumerate(updates,
                                                        start=1)]
            results = await asyncio.gather(
                *(self._push(member_id, channel, frames, len(updates))
                  for member_id, channel in self._members.items()))
            dispatch_wall = time.perf_counter() - dispatch_start
            acks = sum(r for r in results)
            expected_acks = len(self._members) * len(updates)
            return RolloutReport(
                backend="asyncio", members=len(self._members),
                waves=len(updates), join_wall_s=join_wall,
                dispatch_wall_s=dispatch_wall, acks=acks,
                failures=expected_acks - acks,
                encrypted=all(c.encrypted
                              for c in self._members.values()))
        finally:
            server.close()
            await asyncio.gather(
                *(self._farewell(c) for c in self._members.values()),
                return_exceptions=True)
            self._members.clear()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Register one member; wave traffic happens in `_push`."""
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            channel = await aio.accept_channel(
                reader, writer, self.secret, max_frame=self.max_frame,
                send_queue=self.send_queue)
            hello = await asyncio.wait_for(channel.recv(), timeout=30.0)
        except (ProtocolError, ConnectionError, OSError,
                asyncio.TimeoutError):
            try:
                writer.close()
            except OSError:
                pass
            return
        if hello is None or hello.get("type") != protocol.HELLO \
                or hello.get("version") != protocol.PROTOCOL_VERSION:
            await channel.close()
            return
        member_id = str(hello.get("member_id", ""))
        if not member_id or member_id in self._members \
                or len(self._members) >= self.expected:
            await channel.close()
            return
        self._members[member_id] = channel
        try:
            await channel.send({"type": protocol.READY,
                                "version": protocol.PROTOCOL_VERSION})
        except (ConnectionError, ProtocolError, OSError):
            self._members.pop(member_id, None)
            await channel.close()
            return
        if len(self._members) >= self.expected:
            assert self._joined is not None
            self._joined.set()

    async def _push(self, member_id: str, channel: AsyncChannel,
                    frames: List[bytes], waves: int) -> int:
        """Stream every wave to one member, then collect the acks.

        The waves are *pipelined*: all updates go into the member's
        bounded send queue up front (parking if the member reads
        slowly — that is the backpressure).  Acks are counted by a
        reader-side hook rather than a recv loop: at 10k members the
        per-ack queue hop and consumer wakeup are the dispatcher's
        hottest non-crypto cost, and the hook removes both.  One
        timeout budget covers the whole conversation.
        """
        acks = [0]
        want = set(range(1, waves + 1))
        done = asyncio.get_running_loop().create_future()

        async def on_acks(messages: List[Dict[str, Any]]) -> None:
            for message in messages:
                if message.get("type") == protocol.ACK \
                        and message.get("seq") in want:
                    want.discard(message.get("seq"))
                    if message.get("status") == ACK_OK:
                        acks[0] += 1
            if not want and not done.done():
                done.set_result(None)

        def on_end(_error) -> None:
            if not done.done():
                done.set_result(None)

        await channel.install_hook(on_acks, on_end)

        async def converse() -> None:
            await channel.send_frames(frames)
            await done

        # wait_for, not 3.11+'s asyncio.timeout(): requires-python is
        # 3.9 and this is the one timeout on the rollout hot path.
        try:
            await asyncio.wait_for(converse(), self.member_timeout)
        except (ConnectionError, ProtocolError, OSError,
                asyncio.TimeoutError):
            pass
        return acks[0]

    async def _farewell(self, channel: AsyncChannel) -> None:
        try:
            await channel.send({"type": protocol.SHUTDOWN})
        except (ConnectionError, ProtocolError, OSError):
            pass
        await channel.close()


# --------------------------------------------------------------------------
# The threaded dispatcher (v2 architecture, kept as the baseline)
# --------------------------------------------------------------------------


class ThreadedRolloutDispatcher:
    """Thread-per-member baseline with identical wire behavior.

    This is the architecture the asyncio fabric replaced; it exists so
    ``bench_fabric_scale`` can measure the speedup against the real
    alternative instead of a straw man.  Do not use it beyond
    benchmarks and the equivalence tests.
    """

    def __init__(self, expected: int, secret: Optional[bytes],
                 host: str = "127.0.0.1", port: int = 0,
                 join_timeout: float = 120.0,
                 member_timeout: float = 60.0,
                 max_frame: int = MAX_FRAME,
                 on_listen=None):
        self.expected = expected
        self.secret = secret
        self.host = host
        self.port = port
        self.join_timeout = join_timeout
        self.member_timeout = member_timeout
        self.max_frame = max_frame
        self.on_listen = on_listen
        self._lock = threading.Lock()
        self._all_joined = threading.Event()
        self._members: Dict[str, "protocol.MessageStream"] = {}

    def run(self, updates: Sequence[Tuple[str, bytes]]) -> RolloutReport:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(1024)
        bound_host, bound_port = listener.getsockname()[:2]
        if self.on_listen is not None:
            self.on_listen(bound_host, bound_port)
        join_start = time.perf_counter()
        acceptors: List[threading.Thread] = []
        listener.settimeout(0.5)
        deadline = time.monotonic() + self.join_timeout
        try:
            while not self._all_joined.is_set():
                if time.monotonic() > deadline:
                    raise ProtocolError(
                        "only %d of %d members joined within %.0fs"
                        % (len(self._members), self.expected,
                           self.join_timeout))
                try:
                    sock, _addr = listener.accept()
                except socket.timeout:
                    continue
                thread = threading.Thread(target=self._join_member,
                                          args=(sock,), daemon=True)
                thread.start()
                acceptors.append(thread)
            for thread in acceptors:
                thread.join(timeout=10.0)
        finally:
            listener.close()
        join_wall = time.perf_counter() - join_start

        counts: Dict[str, int] = {}
        dispatch_start = time.perf_counter()
        pushers = []
        for member_id, stream in self._members.items():
            thread = threading.Thread(
                target=self._push, args=(member_id, stream, updates,
                                         counts), daemon=True)
            thread.start()
            pushers.append(thread)
        for thread in pushers:
            thread.join()
        dispatch_wall = time.perf_counter() - dispatch_start

        acks = sum(counts.values())
        expected_acks = len(self._members) * len(updates)
        report = RolloutReport(
            backend="threaded", members=len(self._members),
            waves=len(updates), join_wall_s=join_wall,
            dispatch_wall_s=dispatch_wall, acks=acks,
            failures=expected_acks - acks,
            encrypted=all(s.encrypted for s in self._members.values()))
        for stream in self._members.values():
            try:
                stream.send({"type": protocol.SHUTDOWN})
            except (ConnectionError, ProtocolError, OSError):
                pass
            stream.close()
        self._members.clear()
        return report

    def _join_member(self, sock: socket.socket) -> None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            stream = protocol.accept_stream(sock, self.secret,
                                            max_frame=self.max_frame)
            hello = stream.recv()
        except (ProtocolError, ConnectionError, OSError):
            sock.close()
            return
        if hello is None or hello.get("type") != protocol.HELLO:
            sock.close()
            return
        member_id = str(hello.get("member_id", ""))
        with self._lock:
            if not member_id or member_id in self._members \
                    or len(self._members) >= self.expected:
                sock.close()
                return
            self._members[member_id] = stream
            complete = len(self._members) >= self.expected
        try:
            stream.send({"type": protocol.READY,
                         "version": protocol.PROTOCOL_VERSION})
        except (ConnectionError, ProtocolError, OSError):
            with self._lock:
                self._members.pop(member_id, None)
            sock.close()
            return
        if complete:
            self._all_joined.set()

    def _push(self, member_id: str, stream: "protocol.MessageStream",
              updates: Sequence[Tuple[str, bytes]],
              counts: Dict[str, int]) -> None:
        acks = 0
        stream.sock.settimeout(self.member_timeout)
        try:
            for seq, (cve_id, payload) in enumerate(updates, start=1):
                stream.send({"type": protocol.UPDATE, "seq": seq,
                             "cve_id": cve_id, "payload": payload})
                while True:
                    ack = stream.recv()
                    if ack is None:
                        raise ConnectionError("member closed mid-wave")
                    if ack.get("type") == protocol.ACK \
                            and ack.get("seq") == seq:
                        break
                if ack.get("status") == ACK_OK:
                    acks += 1
        except (ConnectionError, ProtocolError, OSError,
                socket.timeout):
            pass
        with self._lock:
            counts[member_id] = acks


# --------------------------------------------------------------------------
# The member simulator
# --------------------------------------------------------------------------


async def _run_member(host: str, port: int, member_id: str,
                      secret: Optional[bytes],
                      connect_timeout: float = 60.0) -> int:
    """One fleet member: join, ack every update, leave on shutdown.

    Returns the number of updates applied.  Connection attempts retry
    briefly — at fleet scale the dispatcher's accept queue can lag the
    thundering herd of joiners.
    """
    deadline = time.monotonic() + connect_timeout
    attempt = 0
    while True:
        try:
            channel = await aio.connect_channel(
                host, port, secret, connect_timeout=10.0)
            break
        except (ConnectionError, OSError, asyncio.TimeoutError):
            attempt += 1
            if time.monotonic() > deadline:
                raise
            await asyncio.sleep(min(0.05 * attempt, 0.5))
    applied = [0]
    done = asyncio.get_running_loop().create_future()

    async def on_messages(messages: List[Dict[str, Any]]) -> None:
        acks = []
        for message in messages:
            kind = message.get("type")
            if kind == protocol.UPDATE:
                payload = message.get("payload") or b""
                status = ACK_OK if verify_payload(payload) \
                    else ACK_CORRUPT
                acks.append({"type": protocol.ACK,
                             "seq": message.get("seq"),
                             "status": status,
                             "member_id": member_id})
                applied[0] += 1
            elif kind == protocol.SHUTDOWN:
                if not done.done():
                    done.set_result(None)
        if acks:
            # Awaiting the send here parks the reader when the ack
            # queue is full — backpressure all the way to TCP.
            await channel.send_batch(acks)

    def on_end(_error) -> None:
        if not done.done():
            done.set_result(None)

    try:
        await channel.send({"type": protocol.HELLO,
                            "version": protocol.PROTOCOL_VERSION,
                            "member_id": member_id})
        ready = await asyncio.wait_for(channel.recv(), timeout=120.0)
        if ready is None or ready.get("type") != protocol.READY:
            return 0
        await channel.install_hook(on_messages, on_end)
        await done
        return applied[0]
    except (ConnectionError, ProtocolError, OSError,
            asyncio.TimeoutError):
        return applied[0]
    finally:
        await channel.close()


async def run_members_async(host: str, port: int, count: int,
                            secret: Optional[bytes],
                            prefix: str = "m") -> int:
    """Run ``count`` member simulators on the current event loop."""
    results = await asyncio.gather(
        *(_run_member(host, port, "%s%d" % (prefix, index), secret)
          for index in range(count)),
        return_exceptions=True)
    return sum(r for r in results if isinstance(r, int))


def run_members(host: str, port: int, count: int,
                secret: Optional[bytes], prefix: str = "m") -> int:
    return asyncio.run(run_members_async(host, port, count, secret,
                                         prefix=prefix))


def _member_shard_child(host: str, port: int, count: int,
                        secret: Optional[bytes], prefix: str) -> None:
    # The simulators churn short-lived dicts/bytes at wire rate and
    # hold no cycles; generational GC passes are pure overhead here.
    import gc
    gc.disable()
    run_members(host, port, count, secret, prefix=prefix)


@dataclass
class MemberShards:
    """Handle on the forked member fleet."""

    processes: List[Any] = field(default_factory=list)

    def join(self, timeout: float = 300.0) -> None:
        deadline = time.monotonic() + timeout
        for process in self.processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))

    def stop(self) -> None:
        for process in self.processes:
            if process.is_alive():
                process.terminate()
            process.join(timeout=10.0)


def spawn_member_shards(host: str, port: int, total: int,
                        secret: Optional[bytes],
                        shard_size: int = 1000) -> MemberShards:
    """Fork the simulated fleet into child processes.

    The dispatcher process spends one fd per member; the member side
    spends another — sharding the members across children keeps each
    process comfortably under the fd rlimit at 10k-member scale.
    """
    import multiprocessing

    shards = MemberShards()
    start = 0
    index = 0
    while start < total:
        count = min(shard_size, total - start)
        process = multiprocessing.Process(
            target=_member_shard_child,
            args=(host, port, count, secret, "s%d-" % index),
            daemon=True)
        process.start()
        shards.processes.append(process)
        start += count
        index += 1
    return shards

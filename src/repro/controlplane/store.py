"""Durable JSON-on-disk storage for the control plane.

The store follows the disk cache tier's write discipline
(``compiler/cache.py``): every document is written to a sibling temp
file and renamed into place with ``os.replace``, so a killed daemon
leaves either the old document or the new one, never a torn file.
Layout under the data root (``REPRO_CONTROLPLANE_DIR``, default
``cache_root()/controlplane``)::

    registry.json           {"members": {member_id: {...}}}
    channels.json           {"channels": {name: {...}}}
    rollouts/<id>.json      one RolloutRecord document each

:class:`ChannelStore` is deliberately standalone — it backs both the
daemon's release channels *and* the in-process
:class:`~repro.core.distribution.UpdateChannel` (which stores whole
update packs per entry); with ``root=None`` it keeps the same schema in
memory only, which is how the distribution example runs without
touching disk.  Sequence numbering lives here: ``append_entry`` stamps
each entry with ``sequence`` (previous + 1) and ``base_sequence`` (the
sequence it stacks on), the invariant subscribers check before
applying.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional

from repro.controlplane.model import (
    DEFAULT_CHANNELS,
    Member,
    RolloutRecord,
    StoreCorruptError,
    UnknownChannelError,
    UnknownMemberError,
    UnknownRolloutError,
)
from repro.pipeline.store import cache_root

DATA_DIR_ENV = "REPRO_CONTROLPLANE_DIR"


def default_data_dir() -> str:
    return os.environ.get(DATA_DIR_ENV) or os.path.join(
        cache_root(), "controlplane")


def atomic_write_json(path: str, data: Any) -> None:
    """The cache tier's write idiom: temp file + atomic rename."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def load_json(path: str, default: Any) -> Any:
    """Read a store document; absent -> ``default``, torn -> raises."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return default
    except (OSError, ValueError) as exc:
        raise StoreCorruptError("cannot read store document %s: %s"
                                % (path, exc))


class ChannelStore:
    """Named release channels, each an ordered entry series.

    A channel document::

        {"name": ..., "kernel_version": ...,
         "entries": [{"sequence": 1, "base_sequence": 0, ...}, ...]}

    Entries carry whatever payload the publisher supplies (a corpus
    ``cve_id`` for the daemon, a base64 update pack plus resulting
    source tree for :class:`UpdateChannel`); this store only owns the
    sequence chain.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = root
        self._path = (os.path.join(root, "channels.json")
                      if root else None)
        self._lock = threading.RLock()
        self._memory: Dict[str, Any] = {"channels": {}}

    # -- document plumbing -------------------------------------------------

    def _load(self) -> Dict[str, Any]:
        if self._path is None:
            return self._memory
        return load_json(self._path, {"channels": {}})

    def _save(self, doc: Dict[str, Any]) -> None:
        if self._path is None:
            self._memory = doc
        else:
            atomic_write_json(self._path, doc)

    # -- channels ----------------------------------------------------------

    def ensure_channel(self, name: str,
                       kernel_version: str = "") -> Dict[str, Any]:
        """Create the channel if missing; return its document."""
        with self._lock:
            doc = self._load()
            channel = doc["channels"].get(name)
            if channel is None:
                channel = {"name": name,
                           "kernel_version": kernel_version,
                           "entries": []}
                doc["channels"][name] = channel
                self._save(doc)
            return dict(channel)

    def get(self, name: str) -> Dict[str, Any]:
        with self._lock:
            channel = self._load()["channels"].get(name)
        if channel is None:
            raise UnknownChannelError("no channel %r (have: %s)"
                                      % (name, ", ".join(self.names())
                                         or "none"))
        return dict(channel)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._load()["channels"])

    def set_kernel_version(self, name: str, version: str) -> None:
        with self._lock:
            doc = self._load()
            if name not in doc["channels"]:
                raise UnknownChannelError("no channel %r" % name)
            doc["channels"][name]["kernel_version"] = version
            self._save(doc)

    # -- entries -----------------------------------------------------------

    def entries(self, name: str) -> List[Dict[str, Any]]:
        return [dict(e) for e in self.get(name)["entries"]]

    def latest_sequence(self, name: str) -> int:
        entries = self.get(name)["entries"]
        return int(entries[-1]["sequence"]) if entries else 0

    def append_entry(self, name: str,
                     payload: Dict[str, Any]) -> Dict[str, Any]:
        """Publish: stamp the §5.4 sequence chain onto ``payload``."""
        with self._lock:
            doc = self._load()
            channel = doc["channels"].get(name)
            if channel is None:
                raise UnknownChannelError("no channel %r" % name)
            latest = (int(channel["entries"][-1]["sequence"])
                      if channel["entries"] else 0)
            entry = dict(payload)
            entry["sequence"] = latest + 1
            entry["base_sequence"] = latest
            channel["entries"].append(entry)
            self._save(doc)
            return dict(entry)

    def replace_entries(self, name: str,
                        entries: List[Dict[str, Any]]) -> None:
        """Overwrite the series wholesale (tests and repair tooling)."""
        with self._lock:
            doc = self._load()
            if name not in doc["channels"]:
                raise UnknownChannelError("no channel %r" % name)
            doc["channels"][name]["entries"] = [dict(e) for e in entries]
            self._save(doc)


class ControlPlaneStore:
    """The daemon's whole durable state: registry, channels, rollouts.

    Constructing a store against an existing data directory *is* the
    recovery path — every accessor reads the documents under the root,
    so a restarted daemon sees exactly what the killed one had flushed.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_data_dir()
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.RLock()
        self.channels = ChannelStore(root=self.root)
        self._registry_path = os.path.join(self.root, "registry.json")
        self._rollouts_dir = os.path.join(self.root, "rollouts")
        for name in DEFAULT_CHANNELS:
            self.channels.ensure_channel(name)

    # -- members -----------------------------------------------------------

    def _registry(self) -> Dict[str, Any]:
        return load_json(self._registry_path, {"members": {}})

    def members(self) -> List[Member]:
        with self._lock:
            doc = self._registry()
        return [Member.from_json_dict(doc["members"][member_id])
                for member_id in sorted(doc["members"])]

    def member_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._registry()["members"])

    def get_member(self, member_id: str) -> Member:
        with self._lock:
            data = self._registry()["members"].get(member_id)
        if data is None:
            raise UnknownMemberError("no registered member %r"
                                     % member_id)
        return Member.from_json_dict(data)

    def save_member(self, member: Member) -> None:
        with self._lock:
            doc = self._registry()
            doc["members"][member.member_id] = member.to_json_dict()
            atomic_write_json(self._registry_path, doc)

    def update_members(self, members: List[Member]) -> None:
        """Write several member records in one atomic document flush."""
        with self._lock:
            doc = self._registry()
            for member in members:
                doc["members"][member.member_id] = member.to_json_dict()
            atomic_write_json(self._registry_path, doc)

    # -- rollouts ----------------------------------------------------------

    def _rollout_path(self, rollout_id: str) -> str:
        return os.path.join(self._rollouts_dir, "%s.json" % rollout_id)

    def save_rollout(self, record: RolloutRecord) -> None:
        with self._lock:
            atomic_write_json(self._rollout_path(record.rollout_id),
                              record.to_json_dict())

    def load_rollout(self, rollout_id: str) -> RolloutRecord:
        with self._lock:
            data = load_json(self._rollout_path(rollout_id), None)
        if data is None:
            raise UnknownRolloutError("no rollout %r" % rollout_id)
        return RolloutRecord.from_json_dict(data)

    def rollout_ids(self) -> List[str]:
        try:
            names = os.listdir(self._rollouts_dir)
        except FileNotFoundError:
            return []
        return sorted(name[:-len(".json")] for name in names
                      if name.endswith(".json"))

    def rollouts(self) -> List[RolloutRecord]:
        return [self.load_rollout(rollout_id)
                for rollout_id in self.rollout_ids()]

"""Update-channel control plane: the vendor side of §8, as a service.

The paper's future work sketches vendor-distributed hot updates; the
in-process model (:mod:`repro.core.distribution`) runs one subscriber
at a time and dies with the process.  This package turns it into a
long-running coordinator:

* :mod:`~repro.controlplane.store` — durable atomic JSON-on-disk state
  (fleet registry, release channels, rollout records) that survives a
  killed-and-restarted daemon;
* :mod:`~repro.controlplane.model` — :class:`Member`,
  :class:`RolloutRecord`, and the typed error family;
* :mod:`~repro.controlplane.service` — publish-to-channel drives the
  existing canary-wave rollout machinery over the *registered*
  members, streaming wave progress into the store, and folds the
  outcome back into each member's applied stack and health history;
* :mod:`~repro.controlplane.api` — the REST/JSON daemon
  (``repro serve``), stdlib ``http.server`` only;
* :mod:`~repro.controlplane.client` — the thin HTTP client the
  ``repro channel`` / ``repro member`` subcommands speak.
"""

from repro.controlplane.api import (
    DEFAULT_PORT,
    ControlPlaneServer,
    serve_control_plane,
)
from repro.controlplane.client import (
    ControlPlaneClient,
    ControlPlaneClientError,
    default_url,
)
from repro.controlplane.model import (
    ROLLOUT_COMPLETE,
    ROLLOUT_FAILED,
    ROLLOUT_GATED,
    ROLLOUT_HALTED,
    ROLLOUT_INTERRUPTED,
    ROLLOUT_RUNNING,
    ControlPlaneError,
    Member,
    RolloutRecord,
    UnknownChannelError,
    UnknownMemberError,
    UnknownRolloutError,
)
from repro.controlplane.service import ControlPlaneService
from repro.controlplane.store import (
    ChannelStore,
    ControlPlaneStore,
    default_data_dir,
)

__all__ = [
    "DEFAULT_PORT",
    "ROLLOUT_COMPLETE",
    "ROLLOUT_FAILED",
    "ROLLOUT_GATED",
    "ROLLOUT_HALTED",
    "ROLLOUT_INTERRUPTED",
    "ROLLOUT_RUNNING",
    "ChannelStore",
    "ControlPlaneClient",
    "ControlPlaneClientError",
    "ControlPlaneError",
    "ControlPlaneServer",
    "ControlPlaneService",
    "ControlPlaneStore",
    "Member",
    "RolloutRecord",
    "UnknownChannelError",
    "UnknownMemberError",
    "UnknownRolloutError",
    "default_data_dir",
    "default_url",
    "serve_control_plane",
]

"""Data model for the update-channel control plane.

The control plane's durable state is three collections of plain JSON
documents (see :mod:`repro.controlplane.store`):

* **members** — one :class:`Member` per registered machine: identity,
  kernel version, the channel it subscribes to, its applied update
  stack, a bounded health history, and the pin / quarantine flags the
  operator can flip;
* **channels** — named release channels (``stable`` / ``canary`` /
  ``nightly`` exist out of the box) holding an ordered series of
  published entries, each stamped with ``sequence`` and
  ``base_sequence`` so the §5.4 stacking discipline is explicit in the
  store, not implicit in publish order;
* **rollouts** — one :class:`RolloutRecord` per publish: which members
  were targeted (and which were skipped, with reasons), every canary
  wave streamed in as it closes, and the final
  :class:`~repro.fleet.model.RolloutReport` once the fleet converges.

Everything serializes to sorted deterministic JSON the way fleet and
analyzer reports do; nothing here holds wall-clock fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError

#: channels every fresh store starts with
DEFAULT_CHANNELS = ("stable", "canary", "nightly")

#: rollout record statuses
ROLLOUT_RUNNING = "running"
ROLLOUT_COMPLETE = "complete"
ROLLOUT_HALTED = "halted"
ROLLOUT_GATED = "gated"
ROLLOUT_FAILED = "failed"
#: a rollout found in ``running`` state when the daemon rebooted
ROLLOUT_INTERRUPTED = "interrupted"

#: how many health-history entries a member record keeps
HEALTH_HISTORY_LIMIT = 20


class ControlPlaneError(ReproError):
    """The control plane refused an operation (bad input, bad state)."""


class UnknownMemberError(ControlPlaneError):
    """No registered member with that id."""


class UnknownChannelError(ControlPlaneError):
    """No release channel with that name."""


class UnknownRolloutError(ControlPlaneError):
    """No recorded rollout with that id."""


class StoreCorruptError(ControlPlaneError):
    """A durable store document exists but cannot be parsed."""


@dataclass
class Member:
    """One registered machine in the fleet registry."""

    member_id: str
    kernel_version: str
    channel: str = "stable"
    #: ``host:port`` of a ``repro worker`` the member lives on, or ""
    worker: str = ""
    #: pinned members keep their current stack; rollouts skip them
    pinned: bool = False
    #: quarantined members are excluded from waves until released
    quarantined: bool = False
    #: the channel sequence this member has caught up to
    applied_sequence: int = 0
    #: the member's applied update stack, oldest first
    applied_updates: List[Dict[str, Any]] = field(default_factory=list)
    #: bounded trail of per-rollout health outcomes, oldest first
    health_history: List[Dict[str, Any]] = field(default_factory=list)
    rollouts_seen: int = 0

    def record_health(self, entry: Dict[str, Any]) -> None:
        self.health_history.append(entry)
        if len(self.health_history) > HEALTH_HISTORY_LIMIT:
            del self.health_history[:-HEALTH_HISTORY_LIMIT]

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "member_id": self.member_id,
            "kernel_version": self.kernel_version,
            "channel": self.channel,
            "worker": self.worker,
            "pinned": self.pinned,
            "quarantined": self.quarantined,
            "applied_sequence": self.applied_sequence,
            "applied_updates": list(self.applied_updates),
            "health_history": list(self.health_history),
            "rollouts_seen": self.rollouts_seen,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "Member":
        return cls(
            member_id=data["member_id"],
            kernel_version=data.get("kernel_version", ""),
            channel=data.get("channel", "stable"),
            worker=data.get("worker", ""),
            pinned=bool(data.get("pinned", False)),
            quarantined=bool(data.get("quarantined", False)),
            applied_sequence=int(data.get("applied_sequence", 0)),
            applied_updates=list(data.get("applied_updates", [])),
            health_history=list(data.get("health_history", [])),
            rollouts_seen=int(data.get("rollouts_seen", 0)))


@dataclass
class RolloutRecord:
    """One publish-to-channel and the fleet convergence it drove.

    ``waves`` grows while the rollout runs — the orchestrator streams
    each closed wave in, so ``GET /rollouts/<id>`` shows live canary
    progress; ``report`` is the final
    :class:`~repro.fleet.model.RolloutReport` JSON once the run ends.
    """

    rollout_id: str
    channel: str
    cve_id: str
    #: the channel sequence this rollout delivers
    sequence: int
    status: str = ROLLOUT_RUNNING
    detail: str = ""
    #: registered members targeted, in fleet-index order
    member_ids: List[str] = field(default_factory=list)
    #: members excluded before the fleet booted, with reasons
    skipped: List[Dict[str, str]] = field(default_factory=list)
    #: "host:port" when the rollout ran on a remote worker
    worker: str = ""
    waves: List[Dict[str, Any]] = field(default_factory=list)
    report: Optional[Dict[str, Any]] = None
    #: the publish gate's evidence bundle: analyzer verdict, proof
    #: status, and evidence records for the published update
    analysis: Optional[Dict[str, Any]] = None
    #: True when --force overrode a refused (reject/unproven) verdict
    forced: bool = False

    @property
    def finished(self) -> bool:
        return self.status != ROLLOUT_RUNNING

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "rollout_id": self.rollout_id,
            "channel": self.channel,
            "cve_id": self.cve_id,
            "sequence": self.sequence,
            "status": self.status,
            "detail": self.detail,
            "member_ids": list(self.member_ids),
            "skipped": list(self.skipped),
            "worker": self.worker,
            "waves": list(self.waves),
            "report": self.report,
            "analysis": self.analysis,
            "forced": self.forced,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "RolloutRecord":
        return cls(
            rollout_id=data["rollout_id"],
            channel=data.get("channel", ""),
            cve_id=data.get("cve_id", ""),
            sequence=int(data.get("sequence", 0)),
            status=data.get("status", ROLLOUT_RUNNING),
            detail=data.get("detail", ""),
            member_ids=list(data.get("member_ids", [])),
            skipped=list(data.get("skipped", [])),
            worker=data.get("worker", ""),
            waves=list(data.get("waves", [])),
            report=data.get("report"),
            analysis=data.get("analysis"),
            forced=bool(data.get("forced", False)))

    def summary(self) -> Dict[str, Any]:
        """The list-view projection (``GET /rollouts``)."""
        return {
            "rollout_id": self.rollout_id,
            "channel": self.channel,
            "cve_id": self.cve_id,
            "sequence": self.sequence,
            "status": self.status,
            "members": len(self.member_ids),
            "waves": len(self.waves),
        }

"""The coordinator daemon: a REST/JSON API over the control plane.

Pure stdlib (:mod:`http.server`); a :class:`ThreadingHTTPServer` so
rollout polling is served while a publish's waves are still landing.
Every response is a JSON object; errors are ``{"error": ...}`` with
the matching status code.

==========  =================================  =========================
method      path                               action
==========  =================================  =========================
GET         /healthz                           daemon liveness
GET         /members                           list the fleet registry
POST        /members                           register (or refresh) one
GET         /members/<id>                      one member's record
POST        /members/<id>/pin                  pin (skip rollouts)
POST        /members/<id>/unpin                release a pin
POST        /members/<id>/quarantine           quarantine
POST        /members/<id>/unquarantine         release a quarantine
GET         /channels                          list release channels
POST        /channels                          create a channel
GET         /channels/<name>                   series + subscribers
POST        /channels/<name>/publish           publish -> canary rollout
GET         /rollouts                          rollout summaries
GET         /rollouts/<id>                     live progress / report
==========  =================================  =========================

``POST .../publish`` answers ``202`` with the new rollout's id right
away; the rollout runs on a daemon thread and ``GET /rollouts/<id>``
streams its wave-by-wave progress (the record is flushed to disk after
every wave, so progress survives a daemon crash too).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.controlplane.model import (
    ControlPlaneError,
    UnknownChannelError,
    UnknownMemberError,
    UnknownRolloutError,
)
from repro.controlplane.service import ControlPlaneService
from repro.controlplane.store import ControlPlaneStore

#: the daemon's default port
DEFAULT_PORT = 7787


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-controlplane"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            BaseHTTPRequestHandler.log_message(self, format, *args)

    @property
    def service(self) -> ControlPlaneService:
        return self.server.service  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n"
                ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ControlPlaneError("request body is not valid JSON")
        if not isinstance(data, dict):
            raise ControlPlaneError("request body must be a JSON object")
        return data

    def _dispatch(self, handler: Callable[[List[str]], None]) -> None:
        segments = [s for s in self.path.split("?")[0].split("/") if s]
        try:
            handler(segments)
        except (UnknownMemberError, UnknownChannelError,
                UnknownRolloutError) as exc:
            self._reply(404, {"error": str(exc)})
        except ControlPlaneError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # machinery failure, not bad input
            self._reply(500, {"error": "%s: %s"
                              % (type(exc).__name__, exc)})

    # -- GET ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server's contract)
        self._dispatch(self._get)

    def _get(self, segments: List[str]) -> None:
        service = self.service
        if segments == ["healthz"]:
            self._reply(200, {"ok": True,
                              "data_dir": service.store.root})
        elif segments == ["members"]:
            self._reply(200, {"members": [m.to_json_dict()
                                          for m in
                                          service.store.members()]})
        elif len(segments) == 2 and segments[0] == "members":
            member = service.store.get_member(segments[1])
            self._reply(200, member.to_json_dict())
        elif segments == ["channels"]:
            self._reply(200, {"channels": [
                service.channel_status(name)
                for name in service.store.channels.names()]})
        elif len(segments) == 2 and segments[0] == "channels":
            self._reply(200, service.channel_status(segments[1]))
        elif segments == ["rollouts"]:
            self._reply(200, {"rollouts": [r.summary()
                                           for r in
                                           service.rollouts()]})
        elif len(segments) == 2 and segments[0] == "rollouts":
            record = service.rollout(segments[1])
            self._reply(200, record.to_json_dict())
        else:
            self._reply(404, {"error": "no route GET /%s"
                              % "/".join(segments)})

    # -- POST --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server's contract)
        self._dispatch(self._post)

    def _post(self, segments: List[str]) -> None:
        service = self.service
        if segments == ["members"]:
            body = self._body()
            member = service.register_member(
                member_id=str(body.get("member_id", "")),
                kernel_version=str(body.get("kernel_version", "")),
                channel=str(body.get("channel", "stable")),
                worker=str(body.get("worker", "")))
            self._reply(201, member.to_json_dict())
        elif (len(segments) == 3 and segments[0] == "members"
              and segments[2] in ("pin", "unpin", "quarantine",
                                  "unquarantine")):
            member = getattr(service, segments[2])(segments[1])
            self._reply(200, member.to_json_dict())
        elif segments == ["channels"]:
            body = self._body()
            channel = service.create_channel(
                str(body.get("name", "")))
            self._reply(201, channel)
        elif (len(segments) == 3 and segments[0] == "channels"
              and segments[2] == "publish"):
            body = self._body()
            cve_id = str(body.get("cve_id", ""))
            if not cve_id:
                raise ControlPlaneError("publish needs a cve_id")
            record = service.publish(
                segments[1], cve_id,
                description=str(body.get("description", "")),
                canary=int(body.get("canary", 1)),
                growth=int(body.get("growth", 2)),
                force=bool(body.get("force", False)))
            self._reply(202, record.to_json_dict())
        else:
            self._reply(404, {"error": "no route POST /%s"
                              % "/".join(segments)})


class ControlPlaneServer(ThreadingHTTPServer):
    """The daemon: HTTP front-end bound to one durable store."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 data_dir: Optional[str] = None,
                 service: Optional[ControlPlaneService] = None,
                 verbose: bool = False):
        self.service = service if service is not None else \
            ControlPlaneService(ControlPlaneStore(data_dir))
        self.verbose = verbose
        ThreadingHTTPServer.__init__(self, address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return "http://%s:%d" % (host, port)


def serve_control_plane(
        host: str = "127.0.0.1", port: int = DEFAULT_PORT,
        data_dir: Optional[str] = None,
        ready: Optional[Callable[[str, int], None]] = None,
        verbose: bool = False) -> None:
    """``repro serve``: run the daemon until interrupted.

    ``port=0`` binds an ephemeral port; ``ready`` receives the bound
    ``(host, port)`` before the serve loop starts, which is how the CI
    smoke job learns the address.
    """
    server = ControlPlaneServer((host, port), data_dir=data_dir,
                                verbose=verbose)
    try:
        if ready is not None:
            bound_host, bound_port = server.server_address[:2]
            ready(bound_host, bound_port)
        server.serve_forever()
    finally:
        server.server_close()

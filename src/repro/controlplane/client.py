"""Thin HTTP client for the coordinator daemon.

Used by the ``repro channel`` / ``repro member`` CLI subcommands and by
tests; pure stdlib (:mod:`urllib.request`).  Server-side refusals come
back as :class:`ControlPlaneClientError` carrying the HTTP status so
the CLI can map 4xx to its uniform exit code 2 (user error) and
everything else to 3 (operation failure).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional

from repro.controlplane.api import DEFAULT_PORT
from repro.errors import ReproError

URL_ENV = "REPRO_CONTROLPLANE_URL"


def default_url() -> str:
    import os

    return os.environ.get(URL_ENV) or ("http://127.0.0.1:%d"
                                       % DEFAULT_PORT)


class ControlPlaneClientError(ReproError):
    """The daemon answered with an error (or could not be reached).

    ``status`` is the HTTP status code, or 0 for transport failures
    (connection refused, daemon gone).
    """

    def __init__(self, message: str, status: int = 0):
        ReproError.__init__(self, message)
        self.status = status

    @property
    def is_user_error(self) -> bool:
        return 400 <= self.status < 500


class ControlPlaneClient:
    """One daemon, addressed by base URL."""

    def __init__(self, base_url: Optional[str] = None,
                 timeout: float = 30.0):
        self.base_url = (base_url or default_url()).rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 ) -> Dict[str, Any]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                payload = response.read()
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")
                                    ).get("error", "")
            except (OSError, ValueError, AttributeError):
                pass
            raise ControlPlaneClientError(
                detail or ("%s %s failed: HTTP %d"
                           % (method, path, exc.code)),
                status=exc.code)
        except (urllib.error.URLError, OSError) as exc:
            raise ControlPlaneClientError(
                "cannot reach the control plane at %s (%s) — is "
                "`repro serve` running?" % (self.base_url, exc))
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ControlPlaneClientError(
                "%s answered non-JSON: %s" % (self.base_url, exc))

    # -- daemon ------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    # -- members -----------------------------------------------------------

    def register_member(self, member_id: str, kernel_version: str,
                        channel: str = "stable",
                        worker: str = "") -> Dict[str, Any]:
        return self._request("POST", "/members", {
            "member_id": member_id, "kernel_version": kernel_version,
            "channel": channel, "worker": worker})

    def members(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/members")["members"]

    def member(self, member_id: str) -> Dict[str, Any]:
        return self._request("GET", "/members/%s" % member_id)

    def member_action(self, member_id: str,
                      action: str) -> Dict[str, Any]:
        return self._request("POST",
                             "/members/%s/%s" % (member_id, action))

    # -- channels ----------------------------------------------------------

    def channels(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/channels")["channels"]

    def create_channel(self, name: str) -> Dict[str, Any]:
        return self._request("POST", "/channels", {"name": name})

    def channel(self, name: str) -> Dict[str, Any]:
        return self._request("GET", "/channels/%s" % name)

    def publish(self, channel: str, cve_id: str,
                description: str = "", canary: int = 1,
                growth: int = 2, force: bool = False) -> Dict[str, Any]:
        return self._request("POST", "/channels/%s/publish" % channel, {
            "cve_id": cve_id, "description": description,
            "canary": canary, "growth": growth, "force": force})

    # -- rollouts ----------------------------------------------------------

    def rollouts(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/rollouts")["rollouts"]

    def rollout(self, rollout_id: str) -> Dict[str, Any]:
        return self._request("GET", "/rollouts/%s" % rollout_id)

    def wait_rollout(
            self, rollout_id: str, timeout: float = 300.0,
            interval: float = 0.2,
            on_wave: Optional[Callable[[Dict[str, Any]], None]] = None,
            ) -> Dict[str, Any]:
        """Poll until the rollout finishes; stream new waves out."""
        deadline = time.monotonic() + timeout
        seen_waves = 0
        while True:
            record = self.rollout(rollout_id)
            waves = record.get("waves", [])
            if on_wave is not None:
                for wave in waves[seen_waves:]:
                    on_wave(wave)
            seen_waves = len(waves)
            if record.get("status") != "running":
                return record
            if time.monotonic() >= deadline:
                raise ControlPlaneClientError(
                    "rollout %s still running after %.0fs"
                    % (rollout_id, timeout))
            time.sleep(interval)

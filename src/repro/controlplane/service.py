"""Control-plane business logic: registry, channels, rollouts.

:class:`ControlPlaneService` sits between the REST layer
(:mod:`repro.controlplane.api`) and the durable store.  Its core move
is ``publish``: append an entry to a channel (the store stamps the
§5.4 sequence chain), select the eligible subscribed members —
quarantined, pinned, version-mismatched, and sequence-gapped members
are *skipped with a recorded reason*, never half-served — and drive
the existing canary-wave machinery
(:func:`repro.fleet.orchestrator.rollout_corpus_cve`) over a fleet
booted for exactly those members.  Each wave is streamed into the
rollout record as it closes, so ``GET /rollouts/<id>`` polls live
progress; the final :class:`~repro.fleet.model.RolloutReport` is
absorbed back into the registry (applied stacks advance, health
history grows, lost members go into quarantine for an operator to
inspect).

Members that registered with a ``worker`` address live on a remote
``repro worker``: when every eligible member of a publish shares one
worker, the whole rollout ships there as a ``fleet-rollout`` item
(:func:`repro.fleet.remote.run_remote_rollout`) and the worker streams
wave frames back into the same record.

Restart recovery is structural: the service holds no state outside the
store, and :meth:`recover` (called at boot) marks any rollout the dead
daemon left ``running`` as ``interrupted`` — its streamed waves stay
readable.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.controlplane.model import (
    ROLLOUT_COMPLETE,
    ROLLOUT_FAILED,
    ROLLOUT_GATED,
    ROLLOUT_HALTED,
    ROLLOUT_INTERRUPTED,
    ROLLOUT_RUNNING,
    ControlPlaneError,
    Member,
    RolloutRecord,
)
from repro.controlplane.store import ControlPlaneStore


class ControlPlaneService:
    """Everything the daemon can be asked to do, HTTP-free."""

    def __init__(self, store: Optional[ControlPlaneStore] = None):
        self.store = store if store is not None else ControlPlaneStore()
        self._publish_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self.recover()

    # -- restart recovery --------------------------------------------------

    def recover(self) -> List[str]:
        """Mark rollouts the previous daemon left mid-flight."""
        interrupted = []
        for record in self.store.rollouts():
            if record.status == ROLLOUT_RUNNING:
                record.status = ROLLOUT_INTERRUPTED
                record.detail = ("daemon restarted mid-rollout; %d "
                                 "wave(s) had completed"
                                 % len(record.waves))
                self.store.save_rollout(record)
                interrupted.append(record.rollout_id)
        return interrupted

    # -- registry ----------------------------------------------------------

    def register_member(self, member_id: str, kernel_version: str,
                        channel: str = "stable",
                        worker: str = "") -> Member:
        if not member_id:
            raise ControlPlaneError("member_id must be non-empty")
        if not kernel_version:
            raise ControlPlaneError("kernel_version must be non-empty")
        self.store.channels.get(channel)  # raises UnknownChannelError
        try:
            member = self.store.get_member(member_id)
        except ControlPlaneError:
            member = Member(member_id=member_id,
                            kernel_version=kernel_version,
                            channel=channel, worker=worker)
        else:
            # re-registration refreshes identity facts, keeps history
            member.kernel_version = kernel_version
            member.channel = channel
            member.worker = worker
        self.store.save_member(member)
        return member

    def _set_flag(self, member_id: str, flag: str,
                  value: bool) -> Member:
        member = self.store.get_member(member_id)
        setattr(member, flag, value)
        self.store.save_member(member)
        return member

    def pin(self, member_id: str) -> Member:
        return self._set_flag(member_id, "pinned", True)

    def unpin(self, member_id: str) -> Member:
        return self._set_flag(member_id, "pinned", False)

    def quarantine(self, member_id: str) -> Member:
        return self._set_flag(member_id, "quarantined", True)

    def unquarantine(self, member_id: str) -> Member:
        return self._set_flag(member_id, "quarantined", False)

    # -- channels ----------------------------------------------------------

    def create_channel(self, name: str) -> Dict[str, Any]:
        if not name:
            raise ControlPlaneError("channel name must be non-empty")
        return self.store.channels.ensure_channel(name)

    def channel_status(self, name: str) -> Dict[str, Any]:
        """One channel with its series, subscribers, and rollouts."""
        channel = self.store.channels.get(name)
        subscribers = [
            {"member_id": m.member_id,
             "applied_sequence": m.applied_sequence,
             "pinned": m.pinned, "quarantined": m.quarantined,
             "current": m.applied_sequence >= self.store.channels
             .latest_sequence(name)}
            for m in self.store.members() if m.channel == name]
        rollouts = [r.summary() for r in self.store.rollouts()
                    if r.channel == name]
        # entries minus bulky payloads (update packs stay in the store)
        entries = [{k: v for k, v in entry.items()
                    if k not in ("pack_b64", "resulting_tree")}
                   for entry in channel["entries"]]
        return {"name": name,
                "kernel_version": channel.get("kernel_version", ""),
                "entries": entries,
                "subscribers": subscribers,
                "rollouts": rollouts}

    # -- publish -> rollout ------------------------------------------------

    def publish(self, channel_name: str, cve_id: str,
                description: str = "", canary: int = 1,
                growth: int = 2,
                synchronous: bool = False,
                force: bool = False) -> RolloutRecord:
        """Publish a corpus CVE's update to a channel and roll it out.

        Publishing is gated on the static analyzer: the update's
        :class:`~repro.analysis.AnalysisReport` must be *proven*
        (evidence-backed) and must not carry a ``reject`` verdict,
        otherwise the publish is refused — an HTTP 400 / CLI exit 2 —
        unless ``force``, in which case the override itself is
        recorded on the rollout.  The evidence bundle rides on the
        record either way, so an operator auditing a rollout sees the
        exact proof (or the exact override) it shipped under.

        Returns the rollout record immediately (status ``running``);
        the rollout itself runs on a daemon thread unless
        ``synchronous`` — callers poll ``rollout()`` for progress.
        """
        from repro.evaluation.corpus import corpus_by_id

        channel = self.store.channels.get(channel_name)
        try:
            spec = corpus_by_id(cve_id)
        except KeyError:
            raise ControlPlaneError("unknown corpus CVE %r" % cve_id)
        pinned_version = channel.get("kernel_version", "")
        if pinned_version and pinned_version != spec.kernel_version:
            raise ControlPlaneError(
                "channel %r serves kernel %s but %s targets %s"
                % (channel_name, pinned_version, cve_id,
                   spec.kernel_version))
        bundle, forced = self._publish_gate(spec, force)
        with self._publish_lock:
            if not pinned_version:
                self.store.channels.set_kernel_version(
                    channel_name, spec.kernel_version)
            entry = self.store.channels.append_entry(channel_name, {
                "cve_id": cve_id,
                "description": description or spec.description,
                "kernel_version": spec.kernel_version,
            })
        eligible, skipped = self._eligible_members(
            channel_name, spec.kernel_version, entry)
        record = RolloutRecord(
            rollout_id="%s-%04d" % (channel_name, entry["sequence"]),
            channel=channel_name, cve_id=cve_id,
            sequence=entry["sequence"],
            member_ids=[m.member_id for m in eligible],
            skipped=skipped,
            worker=self._common_worker(eligible),
            analysis=bundle, forced=forced)
        if not eligible:
            record.status = ROLLOUT_COMPLETE
            record.detail = ("entry #%d published; no eligible members "
                             "to roll out to" % entry["sequence"])
            self.store.save_rollout(record)
            return record
        self.store.save_rollout(record)
        if synchronous:
            self._run_rollout(record, entry, canary, growth)
        else:
            thread = threading.Thread(
                target=self._run_rollout,
                args=(record, entry, canary, growth),
                name="rollout-%s" % record.rollout_id, daemon=True)
            self._threads.append(thread)
            thread.start()
        return record

    def _publish_gate(self, spec: Any, force: bool,
                      ) -> Tuple[Dict[str, Any], bool]:
        """Run the static analyzer over the CVE's update and decide.

        Returns the evidence bundle to record on the rollout plus the
        ``forced`` flag.  Raises :class:`ControlPlaneError` (HTTP 400,
        CLI exit 2) when the verdict is ``reject`` or unproven and
        ``force`` is not set.
        """
        from repro.analysis.model import VERDICT_REJECT
        from repro.errors import ReproError
        from repro.evaluation.analyze import analyze_corpus_cve

        try:
            analysis = analyze_corpus_cve(spec, augmented=True)
        except ReproError as exc:
            if not force:
                raise ControlPlaneError(
                    "publish gate: static analysis of %s failed "
                    "(%s: %s); refusing to publish without force"
                    % (spec.cve_id, type(exc).__name__, exc))
            return ({"error": "%s: %s" % (type(exc).__name__, exc),
                     "forced": True}, True)
        bundle: Dict[str, Any] = {
            "verdict": analysis.verdict,
            "proven": analysis.is_proven(),
            "analyzer_version": analysis.analyzer_version,
            "exit_code": analysis.exit_code(),
            "findings": len(analysis.findings),
            "evidence": [e.to_json_dict()
                         for e in analysis.sorted_evidence()],
            "forced": False,
        }
        refusal = ""
        if analysis.verdict == VERDICT_REJECT:
            refusal = ("the analyzer rejects %s: %s"
                       % (spec.cve_id,
                          "; ".join(f.detail for f in
                                    analysis.findings_for(
                                        VERDICT_REJECT)[:3])))
        elif not bundle["proven"]:
            refusal = ("verdict %s for %s is not backed by "
                       "machine-checkable evidence"
                       % (analysis.verdict, spec.cve_id))
        if refusal and not force:
            raise ControlPlaneError(
                "publish gate: %s; pass force=true (--force) to "
                "override" % refusal)
        if refusal:
            bundle["forced"] = True
            bundle["overridden_refusal"] = refusal
            return bundle, True
        return bundle, False

    def _eligible_members(
            self, channel_name: str, kernel_version: str,
            entry: Dict[str, Any],
            ) -> Tuple[List[Member], List[Dict[str, str]]]:
        eligible: List[Member] = []
        skipped: List[Dict[str, str]] = []

        def skip(member: Member, reason: str) -> None:
            skipped.append({"member_id": member.member_id,
                            "reason": reason})

        for member in self.store.members():
            if member.channel != channel_name:
                continue
            if member.quarantined:
                skip(member, "quarantined")
            elif member.pinned:
                skip(member, "pinned")
            elif member.kernel_version != kernel_version:
                skip(member, "kernel-version mismatch: runs %s, entry "
                     "targets %s" % (member.kernel_version,
                                     kernel_version))
            elif member.applied_sequence != entry["base_sequence"]:
                skip(member, "sequence gap: member at #%d, entry "
                     "stacks on #%d" % (member.applied_sequence,
                                        entry["base_sequence"]))
            else:
                eligible.append(member)
        return eligible, skipped

    @staticmethod
    def _common_worker(members: List[Member]) -> str:
        """The one worker address all members share, else ""."""
        workers = {m.worker for m in members}
        if len(workers) == 1:
            return workers.pop() or ""
        return ""

    def _run_rollout(self, record: RolloutRecord,
                     entry: Dict[str, Any], canary: int,
                     growth: int) -> None:
        from repro.fleet.model import (
            OUTCOME_COMPLETE,
            OUTCOME_GATED,
            OUTCOME_HALTED,
            RolloutPlan,
        )
        from repro.fleet.orchestrator import rollout_corpus_cve
        from repro.fleet.remote import run_remote_rollout

        member_ids = record.member_ids
        plan = RolloutPlan(
            cve_id=record.cve_id, fleet_size=len(member_ids),
            canary=max(1, min(canary, len(member_ids))),
            growth=max(1, growth), member_ids=list(member_ids))

        def stream_wave(wave_dict: Dict[str, Any]) -> None:
            wave_dict = dict(wave_dict)
            wave_dict["member_ids"] = [
                member_ids[i] for i in wave_dict.get("members", [])
                if 0 <= i < len(member_ids)]
            record.waves.append(wave_dict)
            self.store.save_rollout(record)

        try:
            if record.worker:
                report = run_remote_rollout(record.worker, plan,
                                            on_wave=stream_wave)
            else:
                report = rollout_corpus_cve(
                    plan,
                    on_wave=lambda w: stream_wave(w.to_json_dict()))
        except Exception as exc:
            record.status = ROLLOUT_FAILED
            record.detail = "%s: %s" % (type(exc).__name__, exc)
            self.store.save_rollout(record)
            return
        record.report = report.to_json_dict()
        record.status = {
            OUTCOME_COMPLETE: ROLLOUT_COMPLETE,
            OUTCOME_HALTED: ROLLOUT_HALTED,
            OUTCOME_GATED: ROLLOUT_GATED,
        }.get(report.outcome, report.outcome)
        record.detail = report.gate_detail
        self.store.save_rollout(record)
        self._absorb_report(record, entry, report)

    def _absorb_report(self, record: RolloutRecord,
                       entry: Dict[str, Any], report: Any) -> None:
        """Fold the rollout's outcome back into the registry."""
        member_ids = record.member_ids
        updated = {member_ids[i] for i in report.updated_members
                   if 0 <= i < len(member_ids)}
        lost = {member_ids[i] for i in report.lost_members
                if 0 <= i < len(member_ids)}
        outcomes: Dict[str, Dict[str, Any]] = {}
        for wave in report.waves:
            for member_report in wave.member_reports:
                index = member_report.member
                if 0 <= index < len(member_ids):
                    outcomes[member_ids[index]] = {
                        "outcome": member_report.outcome,
                        "detail": member_report.detail,
                        "rolled_back": member_report.rolled_back,
                    }
        changed: List[Member] = []
        for member_id in member_ids:
            member = self.store.get_member(member_id)
            member.rollouts_seen += 1
            outcome = outcomes.get(member_id, {})
            member.record_health({
                "rollout_id": record.rollout_id,
                "outcome": outcome.get("outcome", "untouched"),
                "healthy": member_id in updated,
                "detail": outcome.get("detail", ""),
            })
            if member_id in updated:
                member.applied_sequence = entry["sequence"]
                member.applied_updates.append({
                    "sequence": entry["sequence"],
                    "cve_id": record.cve_id,
                    "channel": record.channel,
                    "rollout_id": record.rollout_id,
                })
            if member_id in lost:
                # a lost member needs operator attention before it can
                # take traffic (or updates) again
                member.quarantined = True
            changed.append(member)
        self.store.update_members(changed)

    # -- queries -----------------------------------------------------------

    def rollout(self, rollout_id: str) -> RolloutRecord:
        return self.store.load_rollout(rollout_id)

    def rollouts(self) -> List[RolloutRecord]:
        return self.store.rollouts()

    def wait_rollout(self, rollout_id: str,
                     timeout: float = 300.0) -> RolloutRecord:
        """Block until the rollout leaves ``running`` (tests, bench)."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            record = self.rollout(rollout_id)
            if record.finished:
                return record
            if time.monotonic() >= deadline:
                raise ControlPlaneError(
                    "rollout %s still running after %.0fs"
                    % (rollout_id, timeout))
            time.sleep(0.05)

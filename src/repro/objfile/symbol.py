"""Symbols: named, possibly local, positions within sections."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class SymbolBinding(enum.Enum):
    LOCAL = "local"
    GLOBAL = "global"


class SymbolKind(enum.Enum):
    FUNC = "func"
    OBJECT = "object"
    NOTYPE = "notype"


@dataclass
class Symbol:
    """A symbol-table entry.

    ``section`` names the defining section, or is ``None`` for undefined
    symbols (externs to be resolved at link or run-pre time).  ``value`` is
    the offset within the defining section.
    """

    name: str
    binding: SymbolBinding = SymbolBinding.GLOBAL
    kind: SymbolKind = SymbolKind.NOTYPE
    section: Optional[str] = None
    value: int = 0
    size: int = 0

    @property
    def is_defined(self) -> bool:
        return self.section is not None

    @property
    def is_local(self) -> bool:
        return self.binding is SymbolBinding.LOCAL

    def copy(self) -> "Symbol":
        return Symbol(name=self.name, binding=self.binding, kind=self.kind,
                      section=self.section, value=self.value, size=self.size)

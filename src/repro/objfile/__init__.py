"""KELF: the object-code container format used by the toolchain.

KELF is a deliberately ELF-shaped format: named sections holding code or
data, a symbol table with local/global bindings, and per-section relocation
lists with explicit addends.  This is the metadata layer at which Ksplice's
pre-post differencing and run-pre matching operate.
"""

from repro.objfile.section import Section, SectionKind
from repro.objfile.symbol import Symbol, SymbolBinding, SymbolKind
from repro.objfile.relocation import Relocation, RelocationType
from repro.objfile.objectfile import ObjectFile
from repro.objfile.serialize import load_object, dump_object

HOOK_SECTIONS = (
    ".ksplice_pre_apply",
    ".ksplice_apply",
    ".ksplice_post_apply",
    ".ksplice_pre_reverse",
    ".ksplice_reverse",
    ".ksplice_post_reverse",
)

__all__ = [
    "HOOK_SECTIONS",
    "ObjectFile",
    "Relocation",
    "RelocationType",
    "Section",
    "SectionKind",
    "Symbol",
    "SymbolBinding",
    "SymbolKind",
    "dump_object",
    "load_object",
]

"""Relocations with explicit addends (RELA style).

The stored field value after relocation is:

* ``R_ABS32``:  S + A
* ``R_PC32``:   S + A - P

where S is the symbol value, A the addend, and P the run-time address of
the field being relocated.  These are exactly the formulas run-pre matching
inverts to recover S from already-relocated run code (§4.3):
``S = val - A`` resp. ``S = val + P_run - A``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RelocationType(enum.Enum):
    ABS32 = "abs32"
    PC32 = "pc32"


@dataclass
class Relocation:
    """One fix-up: write the relocated value at ``offset`` in the section."""

    offset: int
    symbol: str
    type: RelocationType
    addend: int = 0

    FIELD_SIZE = 4

    def compute(self, symbol_value: int, place: int) -> int:
        """Field value given the symbol value S and field address P."""
        if self.type is RelocationType.ABS32:
            return (symbol_value + self.addend) & 0xFFFFFFFF
        return (symbol_value + self.addend - place) & 0xFFFFFFFF

    def solve_symbol(self, field_value: int, place: int) -> int:
        """Invert :meth:`compute`: recover S from a relocated field.

        This is the core run-pre matching equation from §4.3 of the paper
        (``S = val + P_run - A`` for pc-relative fields).
        """
        if self.type is RelocationType.ABS32:
            return (field_value - self.addend) & 0xFFFFFFFF
        return (field_value + place - self.addend) & 0xFFFFFFFF

    def copy(self) -> "Relocation":
        return Relocation(offset=self.offset, symbol=self.symbol,
                          type=self.type, addend=self.addend)

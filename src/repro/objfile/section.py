"""Sections: named byte containers with relocations."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.objfile.relocation import Relocation


class SectionKind(enum.Enum):
    TEXT = "text"
    DATA = "data"
    RODATA = "rodata"
    BSS = "bss"
    KSPLICE = "ksplice"  # hook function-pointer tables

    @property
    def is_allocatable(self) -> bool:
        return True

    @property
    def is_code(self) -> bool:
        return self is SectionKind.TEXT


def kind_for_name(name: str) -> SectionKind:
    """Infer the section kind from an ELF-style section name."""
    if name == ".text" or name.startswith(".text."):
        return SectionKind.TEXT
    if name == ".rodata" or name.startswith(".rodata."):
        return SectionKind.RODATA
    if name == ".bss" or name.startswith(".bss."):
        return SectionKind.BSS
    if name.startswith(".ksplice"):
        return SectionKind.KSPLICE
    return SectionKind.DATA


@dataclass
class Section:
    """One named section.

    ``data`` is the section image (for BSS, zeros of the right length —
    keeping the bytes explicit keeps differencing uniform).  ``relocations``
    are sorted by offset on demand, not by construction.
    """

    name: str
    kind: SectionKind
    data: bytes = b""
    alignment: int = 1
    relocations: List[Relocation] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.data)

    def sorted_relocations(self) -> List[Relocation]:
        return sorted(self.relocations, key=lambda r: r.offset)

    def relocation_at(self, offset: int) -> Relocation:
        for reloc in self.relocations:
            if reloc.offset == offset:
                return reloc
        raise KeyError("no relocation at offset %d in %s" % (offset, self.name))

    def has_relocation_at(self, offset: int) -> bool:
        return any(reloc.offset == offset for reloc in self.relocations)

    def copy(self) -> "Section":
        return Section(
            name=self.name,
            kind=self.kind,
            data=bytes(self.data),
            alignment=self.alignment,
            relocations=[r.copy() for r in self.relocations],
        )

"""Binary serialization of KELF object files.

Update packs written by ksplice-create carry serialized object files (the
paper's update tarball); this module implements the on-disk format:

    magic "KELF" | version u16 | name | nsections u32 | sections | nsyms u32 | symbols

Strings are u16 length-prefixed UTF-8.  All integers little-endian.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO

from repro.errors import ObjectFormatError
from repro.objfile.objectfile import ObjectFile
from repro.objfile.relocation import Relocation, RelocationType
from repro.objfile.section import Section, SectionKind
from repro.objfile.symbol import Symbol, SymbolBinding, SymbolKind

MAGIC = b"KELF"
VERSION = 1

_SECTION_KINDS = list(SectionKind)
_RELOC_TYPES = list(RelocationType)
_BINDINGS = list(SymbolBinding)
_SYMBOL_KINDS = list(SymbolKind)


def _write_str(stream: BinaryIO, text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ObjectFormatError("string too long to serialize")
    stream.write(struct.pack("<H", len(raw)))
    stream.write(raw)


def _read_str(stream: BinaryIO) -> str:
    (length,) = struct.unpack("<H", _read_exact(stream, 2))
    return _read_exact(stream, length).decode("utf-8")


def _read_exact(stream: BinaryIO, count: int) -> bytes:
    data = stream.read(count)
    if len(data) != count:
        raise ObjectFormatError("truncated KELF stream")
    return data


def dump_object(obj: ObjectFile) -> bytes:
    """Serialize ``obj`` to bytes."""
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(struct.pack("<H", VERSION))
    _write_str(out, obj.name)
    out.write(struct.pack("<I", len(obj.sections)))
    for section in obj.sections.values():
        _write_str(out, section.name)
        out.write(struct.pack("<BH", _SECTION_KINDS.index(section.kind),
                              section.alignment))
        out.write(struct.pack("<I", section.size))
        out.write(section.data)
        out.write(struct.pack("<I", len(section.relocations)))
        for reloc in section.sorted_relocations():
            out.write(struct.pack("<IB", reloc.offset,
                                  _RELOC_TYPES.index(reloc.type)))
            out.write(struct.pack("<i", reloc.addend))
            _write_str(out, reloc.symbol)
    out.write(struct.pack("<I", len(obj.symbols)))
    for symbol in obj.symbols:
        _write_str(out, symbol.name)
        out.write(struct.pack("<BB", _BINDINGS.index(symbol.binding),
                              _SYMBOL_KINDS.index(symbol.kind)))
        has_section = symbol.section is not None
        out.write(struct.pack("<B", 1 if has_section else 0))
        if has_section:
            _write_str(out, symbol.section)
        out.write(struct.pack("<II", symbol.value, symbol.size))
    return out.getvalue()


def load_object(data: bytes) -> ObjectFile:
    """Deserialize an object file produced by :func:`dump_object`."""
    stream = io.BytesIO(data)
    if _read_exact(stream, 4) != MAGIC:
        raise ObjectFormatError("bad KELF magic")
    (version,) = struct.unpack("<H", _read_exact(stream, 2))
    if version != VERSION:
        raise ObjectFormatError("unsupported KELF version %d" % version)
    obj = ObjectFile(name=_read_str(stream))
    (nsections,) = struct.unpack("<I", _read_exact(stream, 4))
    for _ in range(nsections):
        name = _read_str(stream)
        kind_idx, alignment = struct.unpack("<BH", _read_exact(stream, 3))
        (size,) = struct.unpack("<I", _read_exact(stream, 4))
        payload = _read_exact(stream, size)
        section = Section(name=name, kind=_SECTION_KINDS[kind_idx],
                          data=payload, alignment=alignment)
        (nrelocs,) = struct.unpack("<I", _read_exact(stream, 4))
        for _ in range(nrelocs):
            offset, type_idx = struct.unpack("<IB", _read_exact(stream, 5))
            (addend,) = struct.unpack("<i", _read_exact(stream, 4))
            symbol = _read_str(stream)
            section.relocations.append(Relocation(
                offset=offset, symbol=symbol,
                type=_RELOC_TYPES[type_idx], addend=addend))
        obj.add_section(section)
    (nsymbols,) = struct.unpack("<I", _read_exact(stream, 4))
    for _ in range(nsymbols):
        name = _read_str(stream)
        binding_idx, kind_idx = struct.unpack("<BB", _read_exact(stream, 2))
        (has_section,) = struct.unpack("<B", _read_exact(stream, 1))
        section_name = _read_str(stream) if has_section else None
        value, size = struct.unpack("<II", _read_exact(stream, 8))
        obj.add_symbol(Symbol(name=name, binding=_BINDINGS[binding_idx],
                              kind=_SYMBOL_KINDS[kind_idx],
                              section=section_name, value=value, size=size))
    return obj

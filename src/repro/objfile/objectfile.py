"""Object files: the unit the compiler emits and the linker consumes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import ObjectFormatError
from repro.objfile.section import Section
from repro.objfile.symbol import Symbol, SymbolBinding, SymbolKind


@dataclass
class ObjectFile:
    """One compilation unit's worth of sections and symbols.

    ``name`` is the unit path (e.g. ``drivers/dst_ca.c``); it doubles as
    the namespace for local symbols when several units define the same
    local name (the paper's ambiguous ``debug`` example).
    """

    name: str
    sections: Dict[str, Section] = field(default_factory=dict)
    symbols: List[Symbol] = field(default_factory=list)

    # -- construction -----------------------------------------------------

    def add_section(self, section: Section) -> Section:
        if section.name in self.sections:
            raise ObjectFormatError(
                "duplicate section %s in %s" % (section.name, self.name))
        self.sections[section.name] = section
        return section

    def add_symbol(self, symbol: Symbol) -> Symbol:
        if symbol.is_defined and symbol.section not in self.sections:
            raise ObjectFormatError(
                "symbol %s defined in missing section %s"
                % (symbol.name, symbol.section))
        self.symbols.append(symbol)
        return symbol

    # -- queries -----------------------------------------------------------

    def section(self, name: str) -> Section:
        try:
            return self.sections[name]
        except KeyError:
            raise ObjectFormatError(
                "no section %s in %s" % (name, self.name)) from None

    def find_symbol(self, name: str) -> Optional[Symbol]:
        for symbol in self.symbols:
            if symbol.name == name:
                return symbol
        return None

    def symbol(self, name: str) -> Symbol:
        found = self.find_symbol(name)
        if found is None:
            raise ObjectFormatError(
                "no symbol %s in %s" % (name, self.name))
        return found

    def defined_symbols(self) -> List[Symbol]:
        return [s for s in self.symbols if s.is_defined]

    def undefined_symbols(self) -> List[Symbol]:
        return [s for s in self.symbols if not s.is_defined]

    def symbols_in_section(self, section_name: str) -> List[Symbol]:
        return [s for s in self.symbols if s.section == section_name]

    def text_sections(self) -> List[Section]:
        return [s for s in self.sections.values() if s.kind.is_code]

    def referenced_symbol_names(self) -> List[str]:
        """All symbol names referenced by any relocation, deduplicated."""
        seen: List[str] = []
        for section in self.sections.values():
            for reloc in section.relocations:
                if reloc.symbol not in seen:
                    seen.append(reloc.symbol)
        return seen

    # -- maintenance --------------------------------------------------------

    def ensure_undefined(self, names: Iterable[str]) -> None:
        """Add undefined symbol entries for referenced-but-missing names."""
        defined = {s.name for s in self.symbols}
        for name in names:
            if name not in defined:
                self.add_symbol(Symbol(name=name, binding=SymbolBinding.GLOBAL,
                                       kind=SymbolKind.NOTYPE, section=None))
                defined.add(name)

    def copy(self) -> "ObjectFile":
        return ObjectFile(
            name=self.name,
            sections={name: sec.copy() for name, sec in self.sections.items()},
            symbols=[s.copy() for s in self.symbols],
        )

    def validate(self) -> None:
        """Internal-consistency check; raises ObjectFormatError on problems."""
        defined = {s.name for s in self.symbols}
        for section in self.sections.values():
            for reloc in section.relocations:
                if reloc.offset < 0 or reloc.offset + reloc.FIELD_SIZE > section.size:
                    raise ObjectFormatError(
                        "relocation at %d outside section %s (size %d)"
                        % (reloc.offset, section.name, section.size))
                if reloc.symbol not in defined:
                    raise ObjectFormatError(
                        "relocation against unknown symbol %s in %s"
                        % (reloc.symbol, section.name))
        for symbol in self.symbols:
            if symbol.is_defined:
                section = self.sections[symbol.section]
                if not 0 <= symbol.value <= section.size:
                    raise ObjectFormatError(
                        "symbol %s at %d outside section %s"
                        % (symbol.name, symbol.value, symbol.section))

"""Unified diff representation, generation, and parsing."""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PatchError

_HUNK_RE = re.compile(
    r"^@@ -(\d+)(?:,(\d+))? \+(\d+)(?:,(\d+))? @@")

DEV_NULL = "/dev/null"


@dataclass
class Hunk:
    """One @@ hunk: line ranges plus tagged lines (' ', '-', '+')."""

    old_start: int
    old_count: int
    new_start: int
    new_count: int
    lines: List[str] = field(default_factory=list)  # tag + content, no \n

    def old_lines(self) -> List[str]:
        return [line[1:] for line in self.lines if line[:1] in (" ", "-")]

    def new_lines(self) -> List[str]:
        return [line[1:] for line in self.lines if line[:1] in (" ", "+")]

    def added(self) -> int:
        return sum(1 for line in self.lines if line.startswith("+"))

    def removed(self) -> int:
        return sum(1 for line in self.lines if line.startswith("-"))

    def header(self) -> str:
        return "@@ -%d,%d +%d,%d @@" % (self.old_start, self.old_count,
                                        self.new_start, self.new_count)


@dataclass
class FilePatch:
    """All hunks for one file.  ``old_path``/``new_path`` are tree-relative;
    DEV_NULL marks creation/deletion."""

    old_path: str
    new_path: str
    hunks: List[Hunk] = field(default_factory=list)

    @property
    def path(self) -> str:
        return self.new_path if self.old_path == DEV_NULL else self.old_path

    @property
    def creates_file(self) -> bool:
        return self.old_path == DEV_NULL

    @property
    def deletes_file(self) -> bool:
        return self.new_path == DEV_NULL

    def added(self) -> int:
        return sum(h.added() for h in self.hunks)

    def removed(self) -> int:
        return sum(h.removed() for h in self.hunks)


@dataclass
class Patch:
    """A parsed multi-file unified diff."""

    files: List[FilePatch] = field(default_factory=list)

    def changed_paths(self) -> List[str]:
        return [fp.path for fp in self.files]

    def file_patch(self, path: str) -> Optional[FilePatch]:
        for fp in self.files:
            if fp.path == path:
                return fp
        return None

    def added(self) -> int:
        return sum(fp.added() for fp in self.files)

    def removed(self) -> int:
        return sum(fp.removed() for fp in self.files)


def count_patch_lines(patch: "Patch | str") -> int:
    """The Figure 3 metric: total changed lines (added + removed)."""
    if isinstance(patch, str):
        patch = parse_patch(patch)
    return patch.added() + patch.removed()


# ---------------------------------------------------------------------------
# Generation


def _splitlines(text: str) -> List[str]:
    return text.split("\n")


def make_patch(old_files: Dict[str, str], new_files: Dict[str, str],
               context: int = 3) -> str:
    """Produce a unified diff transforming ``old_files`` into ``new_files``.

    Paths present in only one mapping become file creations/deletions.
    Returns the diff text ("" when the trees are identical).
    """
    chunks: List[str] = []
    for path in sorted(set(old_files) | set(new_files)):
        old_text = old_files.get(path)
        new_text = new_files.get(path)
        if old_text == new_text:
            continue
        old_label = path if old_text is not None else DEV_NULL
        new_label = path if new_text is not None else DEV_NULL
        # A missing file has zero lines; an empty file has one empty line.
        diff = difflib.unified_diff(
            [] if old_text is None else _splitlines(old_text),
            [] if new_text is None else _splitlines(new_text),
            fromfile=old_label, tofile=new_label,
            n=context, lineterm="")
        lines = list(diff)
        if lines:
            chunks.append("\n".join(lines))
    return "\n".join(chunks) + ("\n" if chunks else "")


# ---------------------------------------------------------------------------
# Parsing


def parse_patch(text: str) -> Patch:
    """Parse a unified diff, tolerating git-style noise lines between files."""
    patch = Patch()
    current: Optional[FilePatch] = None
    hunk: Optional[Hunk] = None
    remaining_old = remaining_new = 0
    pending_from: Optional[str] = None

    for raw in text.splitlines():
        if raw.startswith("--- "):
            pending_from = raw[4:].split("\t")[0].strip()
            hunk = None
            continue
        if raw.startswith("+++ "):
            if pending_from is None:
                raise PatchError("+++ without preceding ---")
            new_path = raw[4:].split("\t")[0].strip()
            current = FilePatch(old_path=_strip_prefix(pending_from),
                                new_path=_strip_prefix(new_path))
            patch.files.append(current)
            pending_from = None
            hunk = None
            continue
        match = _HUNK_RE.match(raw)
        if match:
            if current is None:
                raise PatchError("hunk before any file header")
            hunk = Hunk(
                old_start=int(match.group(1)),
                old_count=int(match.group(2) or "1"),
                new_start=int(match.group(3)),
                new_count=int(match.group(4) or "1"),
            )
            remaining_old = hunk.old_count
            remaining_new = hunk.new_count
            current.hunks.append(hunk)
            continue
        if hunk is not None and (remaining_old > 0 or remaining_new > 0):
            tag = raw[:1]
            if tag == " " or raw == "":
                hunk.lines.append(" " + raw[1:])
                remaining_old -= 1
                remaining_new -= 1
            elif tag == "-":
                hunk.lines.append(raw)
                remaining_old -= 1
            elif tag == "+":
                hunk.lines.append(raw)
                remaining_new -= 1
            elif tag == "\\":
                continue  # "\ No newline at end of file"
            else:
                raise PatchError("bad hunk line %r" % raw)
            continue
        # Noise between files (git headers, index lines, mode lines): skip.
    _validate(patch)
    return patch


def _strip_prefix(path: str) -> str:
    if path == DEV_NULL:
        return path
    for prefix in ("a/", "b/"):
        if path.startswith(prefix):
            return path[len(prefix):]
    return path


def _validate(patch: Patch) -> None:
    for fp in patch.files:
        for hunk in fp.hunks:
            old = len(hunk.old_lines())
            new = len(hunk.new_lines())
            if old != hunk.old_count or new != hunk.new_count:
                raise PatchError(
                    "hunk %s of %s has %d/%d lines, header claims %d/%d"
                    % (hunk.header(), fp.path, old, new,
                       hunk.old_count, hunk.new_count))

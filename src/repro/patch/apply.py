"""Strict patch application (fuzz 0) and reversal."""

from __future__ import annotations

from typing import Dict, List, Union

from repro.errors import PatchError
from repro.patch.unified_diff import FilePatch, Hunk, Patch, parse_patch


def apply_patch(tree: Dict[str, str],
                patch: Union[Patch, str]) -> Dict[str, str]:
    """Apply ``patch`` to a file tree, returning a new tree.

    Context lines are verified exactly; any mismatch raises
    :class:`~repro.errors.PatchError` (no fuzz).  The input tree is not
    modified.
    """
    if isinstance(patch, str):
        patch = parse_patch(patch)
    result = dict(tree)
    for fp in patch.files:
        result[fp.path] = _apply_file(result, fp)
        if fp.deletes_file:
            del result[fp.path]
    return result


def _apply_file(tree: Dict[str, str], fp: FilePatch) -> str:
    if fp.creates_file:
        if fp.path in tree:
            raise PatchError("patch creates %s but it already exists" % fp.path)
        old_lines: List[str] = []
    else:
        if fp.path not in tree:
            raise PatchError("patch modifies missing file %s" % fp.path)
        old_lines = tree[fp.path].split("\n")

    new_lines: List[str] = []
    cursor = 0  # index into old_lines
    for hunk in fp.hunks:
        # difflib line numbers are 1-based; start 0 with count 0 means
        # "insert at the very beginning".
        start = hunk.old_start - 1 if hunk.old_count else hunk.old_start
        if start < cursor:
            raise PatchError("overlapping hunks in %s" % fp.path)
        new_lines.extend(old_lines[cursor:start])
        cursor = start
        expected = hunk.old_lines()
        actual = old_lines[cursor:cursor + len(expected)]
        if actual != expected:
            raise PatchError(
                "hunk %s does not apply to %s:\n  expected %r\n  found %r"
                % (hunk.header(), fp.path, expected[:3], actual[:3]))
        new_lines.extend(hunk.new_lines())
        cursor += len(expected)
    new_lines.extend(old_lines[cursor:])
    return "\n".join(new_lines)


def reverse_patch(patch: Union[Patch, str]) -> Patch:
    """Swap the polarity of a patch so applying it undoes the original."""
    if isinstance(patch, str):
        patch = parse_patch(patch)
    reversed_patch = Patch()
    for fp in patch.files:
        rfp = FilePatch(old_path=fp.new_path, new_path=fp.old_path)
        for hunk in fp.hunks:
            rhunk = Hunk(old_start=hunk.new_start, old_count=hunk.new_count,
                         new_start=hunk.old_start, new_count=hunk.old_count)
            for line in hunk.lines:
                tag = line[:1]
                if tag == "+":
                    rhunk.lines.append("-" + line[1:])
                elif tag == "-":
                    rhunk.lines.append("+" + line[1:])
                else:
                    rhunk.lines.append(line)
            rfp.hunks.append(rhunk)
        reversed_patch.files.append(rfp)
    return reversed_patch

"""Unified-diff patches: the input format of ksplice-create.

The paper's pipeline starts from "a patch in the standard patch format,
the unified diff patch format" (§5).  This package implements that
format — generation (for building the CVE corpus), parsing, and strict
application with context verification (what ``patch(1)`` does at fuzz 0).
"""

from repro.patch.unified_diff import (
    FilePatch,
    Hunk,
    Patch,
    count_patch_lines,
    make_patch,
    parse_patch,
)
from repro.patch.apply import apply_patch, reverse_patch

__all__ = [
    "FilePatch",
    "Hunk",
    "Patch",
    "apply_patch",
    "count_patch_lines",
    "make_patch",
    "parse_patch",
    "reverse_patch",
]

"""The generated-corpus model.

A :class:`GeneratedCorpus` is addressed by ``(seed, size, mix)`` and is
a pure function of that address: regenerating it in another process —
or on a distributed worker that only ever sees a ``gen@`` kernel
version string — yields byte-identical specs, kernels, and manifests.

:class:`GeneratedCorpusProvider` plugs the corpus into everything that
consumes the hand-written table (engine, CLI, coordinator) through the
:class:`repro.evaluation.corpus.CorpusProvider` interface, and carries
the factory's stamped ground truth as an *oracle*:
:func:`scenario_discrepancies` cross-checks every pipeline outcome
against its :class:`~repro.scenarios.factory.Expected` stamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.evaluation.corpus import CorpusProvider
from repro.evaluation.kernels import GeneratedKernel, build_kernel
from repro.evaluation.specs import CveSpec
from repro.scenarios.factory import (
    GROUP_SIZE,
    Expected,
    GeneratedScenario,
    generate_scenario,
    generate_scenarios,
    parse_generated_version,
)


@dataclass
class GeneratedCorpus:
    """A factory corpus addressed by ``(seed, size, mix)``."""

    seed: int
    size: int
    mix: str
    scenarios: List[GeneratedScenario] = field(default_factory=list)

    @classmethod
    def generate(cls, seed: int, size: int,
                 mix: str = "default") -> "GeneratedCorpus":
        return cls(seed=seed, size=size, mix=mix,
                   scenarios=generate_scenarios(seed, size, mix))

    def specs(self) -> List[CveSpec]:
        return [scenario.spec for scenario in self.scenarios]

    def expected_by_id(self) -> Dict[str, Expected]:
        return {scenario.spec.cve_id: scenario.expected
                for scenario in self.scenarios}

    def kernel_versions(self) -> List[str]:
        seen: List[str] = []
        for scenario in self.scenarios:
            version = scenario.spec.kernel_version
            if version not in seen:
                seen.append(version)
        return seen


def generated_kernel_for_version(version: str) -> GeneratedKernel:
    """Rebuild one generated kernel-version group from its ``gen@``
    version string alone (the :func:`kernel_for_version` hook)."""
    seed, size, mix, group = parse_generated_version(version)
    start = group * GROUP_SIZE
    if not 0 <= start < size:
        raise ReproError("generated kernel group %d outside corpus "
                         "size %d" % (group, size))
    specs = [generate_scenario(seed, size, mix, index).spec
             for index in range(start, min(start + GROUP_SIZE, size))]
    return build_kernel(version, cves=specs)


def scenario_discrepancies(results: Sequence[object],
                           expected: Dict[str, Expected]) -> List[str]:
    """Cross-check pipeline outcomes against the factory's stamps.

    One line per violated expectation, per scenario — same contract as
    :func:`repro.evaluation.engine.verdict_discrepancies`, which these
    checks extend (there the oracle is internal consistency; here it is
    the generator's ground truth)."""
    problems: List[str] = []

    def problem(result: object, text: str) -> None:
        problems.append("%s: %s" % (getattr(result, "cve_id", "?"), text))

    for result in results:
        exp = expected.get(getattr(result, "cve_id", ""))
        if exp is None:
            problem(result, "result for a scenario not in this corpus")
            continue
        if result.analysis_verdict != exp.verdict:
            problem(result, "expected verdict %s, analyzer said %s"
                    % (exp.verdict, result.analysis_verdict or "<none>"))
        if result.applied_cleanly != exp.applies_cleanly:
            problem(result, "expected applies_cleanly=%s, got %s (%s)"
                    % (exp.applies_cleanly, result.applied_cleanly,
                       result.apply_error or result.failed_stage))
            continue
        if result.probe_pre_ok is not True or result.probe_post_ok is not True:
            problem(result, "probe did not flip %s: pre_ok=%s post_ok=%s"
                    % (exp.probe_function, result.probe_pre_ok,
                       result.probe_post_ok))
        if exp.exploitable:
            if result.exploit_worked_before is not True:
                problem(result, "exploit expected to escalate pre-patch "
                                "but did not")
            if result.exploit_blocked_after is not True:
                problem(result, "exploit expected to be blocked "
                                "post-patch but was not")
        elif result.exploit_worked_before is not None:
            problem(result, "exploit outcome recorded for a scenario "
                            "stamped non-exploitable")
        if result.inlined_in_run != exp.expect_inlined:
            problem(result, "expected inlined_in_run=%s, measured %s"
                    % (exp.expect_inlined, result.inlined_in_run))
        if result.declared_inline != exp.declared_inline:
            problem(result, "expected declared_inline=%s, got %s"
                    % (exp.declared_inline, result.declared_inline))
        if result.ambiguous_symbol != exp.ambiguous_symbol:
            problem(result, "expected ambiguous_symbol=%s, measured %s"
                    % (exp.ambiguous_symbol, result.ambiguous_symbol))
        if result.needs_new_code != exp.needs_custom:
            problem(result, "expected needs_custom=%s, spec recorded %s"
                    % (exp.needs_custom, result.needs_new_code))
    return problems


class GeneratedCorpusProvider(CorpusProvider):
    """A factory corpus behind the uniform provider interface."""

    name = "generated"

    def __init__(self, corpus: GeneratedCorpus,
                 source_dir: Optional[str] = None) -> None:
        self.corpus = corpus
        self.source_dir = source_dir
        self._by_id = {spec.cve_id: spec for spec in corpus.specs()}
        self._expected = corpus.expected_by_id()

    @classmethod
    def load(cls, corpus_dir: str) -> "GeneratedCorpusProvider":
        """Load a corpus from a manifest directory, regenerating from
        its ``(seed, size, mix)`` address and verifying the manifest
        digest — factory drift fails loudly instead of silently
        evaluating different scenarios than the manifest promises."""
        from repro.scenarios.manifest import load_corpus
        return cls(load_corpus(corpus_dir), source_dir=corpus_dir)

    def specs(self) -> List[CveSpec]:
        return self.corpus.specs()

    def by_id(self, cve_id: str) -> CveSpec:
        return self._by_id[cve_id]

    def expected_for(self, cve_id: str) -> Optional[Expected]:
        return self._expected.get(cve_id)

    def discrepancies(self, results: Sequence[object]) -> List[str]:
        base = super().discrepancies(results)
        return base + scenario_discrepancies(results, self._expected)

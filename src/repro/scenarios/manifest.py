"""Sorted-JSON manifests for generated corpora.

The manifest is the corpus's reproducibility contract: it records the
``(seed, size, mix)`` address, the factory version, a SHA-256 digest
over the canonical scenario content, and one entry per scenario
(ids, addressing, dimensions, content hash, expected ground truth).
``load_corpus`` *regenerates* the corpus from the address and verifies
the digest, so a drifted factory — one that would silently produce
different scenarios than the manifest promises — fails loudly.

All JSON is emitted with ``sort_keys=True`` and a trailing newline, so
the same corpus serializes byte-for-byte identically everywhere.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import TYPE_CHECKING, Dict, List

from repro.errors import ReproError
from repro.evaluation.specs import CveSpec
from repro.scenarios.factory import FACTORY_VERSION, GeneratedScenario

if TYPE_CHECKING:
    from repro.scenarios.model import GeneratedCorpus

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "ksplice-generated-corpus/1"


def spec_fingerprint(spec: CveSpec) -> str:
    """SHA-256 over every generation-relevant field of one spec."""
    probe = None
    if spec.probe is not None:
        probe = [spec.probe.function, list(spec.probe.args),
                 spec.probe.pre, spec.probe.post,
                 [[fn, list(args)] for fn, args in spec.probe.setup]]
    health = None
    if spec.health is not None:
        health = [spec.health.function, list(spec.health.args),
                  spec.health.pre, spec.health.post]
    exploit = None
    if spec.exploit is not None:
        exploit = [spec.exploit.source, spec.exploit.escalated_value,
                   list(spec.exploit.blocked_values)]
    table1 = None
    if spec.table1 is not None:
        table1 = [spec.table1.reason, spec.table1.new_code_lines]
    payload = {
        "cve_id": spec.cve_id,
        "patch_id": spec.patch_id,
        "category": spec.category.value,
        "kernel_version": spec.kernel_version,
        "unit": spec.unit,
        "description": spec.description,
        "vulnerable": spec.vulnerable_fragment,
        "fixed": spec.fixed_fragment,
        "custom_code": spec.custom_code,
        "syscalls": list(spec.syscalls),
        "init_functions": list(spec.init_functions),
        "probe": probe,
        "health": health,
        "exploit": exploit,
        "table1": table1,
        "flags": [spec.expect_inlined, spec.declared_inline,
                  spec.ambiguous_symbol, spec.signature_change,
                  spec.static_local, spec.is_asm],
        "extra_units": {unit: [vuln, fixed] for unit, (vuln, fixed)
                        in sorted(spec.extra_units.items())},
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def scenario_entry(scenario: GeneratedScenario) -> Dict[str, object]:
    return {
        "index": scenario.index,
        "cve_id": scenario.spec.cve_id,
        "kernel_version": scenario.spec.kernel_version,
        "unit": scenario.spec.unit,
        "shape": scenario.shape,
        "dimensions": list(scenario.dimensions),
        "content": spec_fingerprint(scenario.spec),
        "expected": scenario.expected.to_json(),
    }


def corpus_digest(entries: List[Dict[str, object]]) -> str:
    canonical = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def manifest_dict(corpus: "GeneratedCorpus") -> Dict[str, object]:
    entries = [scenario_entry(s) for s in corpus.scenarios]
    return {
        "format": MANIFEST_FORMAT,
        "factory_version": FACTORY_VERSION,
        "seed": corpus.seed & 0xFFFFFFFF,
        "size": corpus.size,
        "mix": corpus.mix,
        "digest": corpus_digest(entries),
        "scenarios": entries,
    }


def manifest_text(corpus: "GeneratedCorpus") -> str:
    return json.dumps(manifest_dict(corpus), indent=2,
                      sort_keys=True) + "\n"


def write_corpus(corpus: "GeneratedCorpus", out_dir: str) -> str:
    """Write ``<out_dir>/manifest.json`` atomically; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, MANIFEST_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(manifest_text(corpus))
    os.replace(tmp, path)
    return path


def read_manifest(corpus_dir: str) -> Dict[str, object]:
    path = os.path.join(corpus_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        raise ReproError("no %s in %r — not a generated corpus "
                         "directory" % (MANIFEST_NAME, corpus_dir))
    with open(path, "r", encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except ValueError as exc:
            raise ReproError("corrupt corpus manifest %s: %s"
                             % (path, exc))
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ReproError("unsupported corpus manifest format %r in %s"
                         % (manifest.get("format"), path))
    return manifest


def load_corpus(corpus_dir: str) -> "GeneratedCorpus":
    """Regenerate the corpus a manifest directory describes, verifying
    the manifest against the regenerated content."""
    from repro.scenarios.model import GeneratedCorpus

    manifest = read_manifest(corpus_dir)
    if manifest.get("factory_version") != FACTORY_VERSION:
        raise ReproError(
            "corpus %s was generated by factory version %r but this "
            "factory is %r; regenerate with `repro generate`"
            % (corpus_dir, manifest.get("factory_version"),
               FACTORY_VERSION))
    corpus = GeneratedCorpus.generate(int(manifest["seed"]),
                                      int(manifest["size"]),
                                      str(manifest["mix"]))
    entries = [scenario_entry(s) for s in corpus.scenarios]
    digest = corpus_digest(entries)
    if digest != manifest.get("digest"):
        raise ReproError(
            "corpus %s does not reproduce: manifest digest %s, "
            "regenerated digest %s (factory drift)"
            % (corpus_dir, manifest.get("digest"), digest))
    return corpus

"""Patch-mutation fuzzing over the whole pipeline.

Extends PR 8's drop-hunk / swap-callee / widen-field operators with
reorder-hunks, split-function, rename-static, and
corrupt-relocation-target, and turns the property test's contract into
a reusable harness: for every mutant the analyzer verdict, the absint
proof status, the run-pre safety abort, and the actual apply outcome
must stay *mutually consistent*.  Divergence is a reported oracle
discrepancy in the :class:`FuzzReport` — never a crash — and mutants
the compiler refuses are legitimate refusals, counted separately.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.model import (
    PROOF_KINDS,
    VERDICT_EXIT_CODES,
    VERDICT_REJECT,
    VERDICT_SAFE,
    VERDICT_SEVERITY,
)
from repro.core import KspliceCore, ksplice_create
from repro.core.create import CreateReport
from repro.errors import ReproError
from repro.evaluation.engine import run_build_for
from repro.evaluation.kernels import kernel_for_version
from repro.evaluation.specs import CveSpec
from repro.kernel import boot_kernel
from repro.patch import make_patch

#: every mutation operator, PR 8's three plus this PR's four
OPERATORS = (
    "drop-hunk",
    "swap-callee",
    "widen-field",
    "reorder-hunks",
    "split-function",
    "rename-static",
    "corrupt-relocation-target",
)


def _defined_functions(text: str) -> List[str]:
    return re.findall(r"^(?:static )?(?:inline )?int (\w+)\(", text, re.M)


def _function_span(text: str, name: str) -> Optional[range]:
    """Character span of one top-level function definition (header
    through its column-0 closing brace)."""
    match = re.search(r"^(?:static )?(?:inline )?int %s\([^)]*\) \{"
                      % re.escape(name), text, re.M)
    if match is None:
        return None
    close = text.find("\n}", match.start())
    if close < 0:
        return None
    return range(match.start(), close + len("\n}") + 1)


def mutate_unit(pre_text: str, fixed_text: str, operator: str,
                rng: Optional[random.Random] = None) -> Optional[str]:
    """Apply one mutation operator to the fixed unit text.

    Returns the mutated unit, or ``None`` when the operator does not
    apply to this unit (no second function to reorder, no static to
    rename, ...).  ``rng`` picks among multiple candidate sites;
    without one the first candidate is used, keeping PR 8's three
    original operators bit-compatible with their old behaviour.
    """
    pick = rng.choice if rng is not None else (lambda seq: seq[0])
    if operator == "drop-hunk":
        # revert the fix: the patch collapses to nothing
        return pre_text
    if operator == "swap-callee":
        functions = _defined_functions(fixed_text)
        calls = [name for name in functions
                 if re.search(r"(?<!int )\b%s\(" % name, fixed_text)]
        if len(functions) < 2 or not calls:
            return None
        target = calls[0]
        replacement = next((f for f in functions if f != target), None)
        if replacement is None:
            return None
        return re.sub(r"(?<!int )\b%s\(" % target, replacement + "(",
                      fixed_text, count=1)
    if operator == "widen-field":
        match = re.search(r"\[(\d+)\]", fixed_text)
        if match is None:
            return None
        widened = "[%d]" % (int(match.group(1)) * 2)
        return fixed_text[:match.start()] + widened \
            + fixed_text[match.end():]
    if operator == "reorder-hunks":
        # move one whole function definition behind its successor: the
        # same program with its hunks (and symbol addresses) reordered
        functions = _defined_functions(fixed_text)
        if len(functions) < 2:
            return None
        candidates = []
        for first, second in zip(functions, functions[1:]):
            span_a = _function_span(fixed_text, first)
            span_b = _function_span(fixed_text, second)
            if span_a and span_b and span_a.stop <= span_b.start:
                candidates.append((span_a, span_b))
        if not candidates:
            return None
        span_a, span_b = pick(candidates)
        text_a = fixed_text[span_a.start:span_a.stop]
        text_b = fixed_text[span_b.start:span_b.stop]
        middle = fixed_text[span_a.stop:span_b.start]
        return (fixed_text[:span_a.start] + text_b + middle + text_a
                + fixed_text[span_b.stop:])
    if operator == "split-function":
        # demote a handler to a static _impl and interpose a
        # delegating wrapper under the original name
        matches = list(re.finditer(r"^int (sys_\w+)\(([^)]*)\) \{",
                                   fixed_text, re.M))
        if not matches:
            return None
        match = pick(matches)
        name, params = match.group(1), match.group(2)
        arg_names = re.findall(r"int (\w+)", params)
        if not arg_names:
            return None
        span = _function_span(fixed_text, name)
        if span is None:
            return None
        body = fixed_text[span.start:span.stop]
        impl = body.replace("int %s(" % name,
                            "static int %s_impl(" % name, 1)
        wrapper = ("\nint %s(%s) {\n    return %s_impl(%s);\n}\n"
                   % (name, params, name, ", ".join(arg_names)))
        return (fixed_text[:span.start] + impl + wrapper
                + fixed_text[span.stop:])
    if operator == "rename-static":
        # rename one file-scope static symbol everywhere in the unit
        statics = re.findall(r"^static (?:inline )?int (\w+)",
                             fixed_text, re.M)
        if not statics:
            return None
        name = pick(statics)
        return re.sub(r"\b%s\b" % re.escape(name), name + "_r",
                      fixed_text)
    if operator == "corrupt-relocation-target":
        # retarget one reference to a global at a different same-kind
        # global: relocations now bind to the wrong symbol
        scalars = re.findall(r"^int (\w+)(?: =[^=]|;)", fixed_text, re.M)
        arrays = re.findall(r"^int (\w+)\[", fixed_text, re.M)
        for kind in (arrays, scalars):
            pairs = [(a, b) for a in kind for b in kind if a != b
                     and len(re.findall(r"\b%s\b" % re.escape(a),
                                        fixed_text)) > 1]
            if pairs:
                victim, target = pick(pairs)
                declaration = re.search(
                    r"^int %s(?:\[| =|;)" % re.escape(victim),
                    fixed_text, re.M)
                use = re.compile(r"\b%s\b" % re.escape(victim))
                for match in use.finditer(fixed_text):
                    if declaration and match.start() == declaration.start() \
                            + len("int "):
                        continue
                    return (fixed_text[:match.start()] + target
                            + fixed_text[match.end():])
        return None
    raise ReproError("unknown mutation operator %r" % operator)


@dataclass
class MutantOutcome:
    """What happened to one mutated patch."""

    cve_id: str
    operator: str
    #: "refused" (build/create raised), "inapplicable", or "evaluated"
    status: str
    verdict: str = ""
    applied: Optional[bool] = None
    problems: List[str] = field(default_factory=list)


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    seed: int
    budget: int
    mutants: int = 0
    refused: int = 0
    inapplicable: int = 0
    verdict_counts: Dict[str, int] = field(default_factory=dict)
    discrepancies: List[str] = field(default_factory=list)
    outcomes: List[MutantOutcome] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.discrepancies

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "mutants": self.mutants,
            "refused": self.refused,
            "inapplicable": self.inapplicable,
            "verdict_counts": dict(sorted(self.verdict_counts.items())),
            "discrepancies": list(self.discrepancies),
            "consistent": self.consistent,
        }


def check_mutant_contract(analysis: object, pack: object,
                          kernel: object, run_build: object) -> List[str]:
    """The verdict/evidence/apply consistency contract, one violation
    per line.  Shared by the fuzz harness and the property test."""
    problems: List[str] = []
    if analysis is None:
        return ["created cleanly but produced no analysis report"]
    verdict = analysis.verdict
    if verdict not in VERDICT_SEVERITY:
        problems.append("verdict %r is not in the lattice" % verdict)
        return problems
    if analysis.exit_code() != VERDICT_EXIT_CODES[verdict]:
        problems.append("verdict %s maps to exit code %d, expected %d"
                        % (verdict, analysis.exit_code(),
                           VERDICT_EXIT_CODES[verdict]))
    if analysis.run_build_analyzed and not analysis.is_proven():
        problems.append("verdict %s is not evidence-backed" % verdict)
    for finding in analysis.findings:
        kinds = PROOF_KINDS.get(finding.verdict)
        if kinds:
            matching = [e for e in analysis.evidence
                        if e.kind in kinds and e.sites]
            if not matching:
                problems.append("finding %s/%s carries no witness"
                                % (finding.verdict, finding.symbol))
    if not pack.units:
        if verdict != VERDICT_SAFE:
            problems.append("empty pack carries verdict %s, not safe"
                            % verdict)
        return problems
    if verdict == VERDICT_REJECT:
        return problems  # the gate refuses these; applying is out of
        # contract
    if verdict == VERDICT_SAFE:
        # a proven-safe verdict promises a clean hot apply
        try:
            machine = boot_kernel(kernel.tree, build=run_build)
            applied = KspliceCore(machine).apply(pack)
        except ReproError as exc:
            problems.append("verdict safe but hot apply aborted: %s"
                            % exc)
        else:
            if not applied.replaced and pack.all_changed_functions():
                problems.append("verdict safe but apply replaced "
                                "nothing")
    return problems


def fuzz_corpus(specs: Sequence[CveSpec], budget: int = 40,
                seed: int = 0,
                tamper: Optional[Callable[[object], None]] = None,
                progress: Optional[Callable[[MutantOutcome], None]] = None,
                ) -> FuzzReport:
    """Run ``budget`` mutation rounds over ``specs``.

    Each round draws a spec and an operator from a seeded RNG, mutates
    the fixed unit, pushes the mutated patch through ksplice-create +
    the analyzer, and checks the consistency contract; violations land
    in ``report.discrepancies``.  ``tamper`` (tests only) mutates each
    analysis report before the check — a planted inconsistency the
    harness must surface.
    """
    rng = random.Random(seed)
    report = FuzzReport(seed=seed, budget=budget)
    pool = list(specs)
    if not pool:
        raise ReproError("fuzz_corpus needs a non-empty spec pool")
    for _round in range(budget):
        spec = pool[rng.randrange(len(pool))]
        operator = OPERATORS[rng.randrange(len(OPERATORS))]
        outcome = MutantOutcome(cve_id=spec.cve_id, operator=operator,
                                status="evaluated")
        kernel = kernel_for_version(spec.kernel_version)
        fixed = kernel.fixed_tree(spec.cve_id, augmented=False)
        mutated = mutate_unit(kernel.tree.read(spec.unit),
                              fixed.read(spec.unit), operator, rng)
        if mutated is None:
            outcome.status = "inapplicable"
            report.inapplicable += 1
            report.outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
            continue
        files = dict(fixed.files)
        files[spec.unit] = mutated
        patch = make_patch(kernel.tree.files, files)
        run_build = run_build_for(kernel)
        create_report = CreateReport()
        try:
            pack = ksplice_create(kernel.tree, patch,
                                  allow_data_changes=True,
                                  report=create_report,
                                  run_build=run_build)
        except ReproError:
            # the mutation broke the patch/build: refused up front,
            # which is itself a consistent outcome
            outcome.status = "refused"
            report.refused += 1
            report.outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
            continue
        report.mutants += 1
        analysis = create_report.analysis
        if tamper is not None and analysis is not None:
            tamper(analysis)
        if analysis is not None:
            outcome.verdict = analysis.verdict
            report.verdict_counts[analysis.verdict] = \
                report.verdict_counts.get(analysis.verdict, 0) + 1
        problems = check_mutant_contract(analysis, pack, kernel,
                                         run_build)
        outcome.problems = problems
        for problem in problems:
            report.discrepancies.append(
                "%s/%s: %s" % (spec.cve_id, operator, problem))
        report.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return report

"""Scenario factory (PR 10): deterministic mass production of
ground-truth CVE scenarios, generated-corpus manifests, and the
patch-mutation fuzzing harness.

The factory composes the archetype fragment generators from
:mod:`repro.evaluation.archetypes` into arbitrarily large corpora
addressed by ``(seed, size, mix)``; every scenario carries a stamped
:class:`~repro.scenarios.factory.Expected` ground truth the pipeline
outcome is checked against, and the same address reproduces the
identical corpus byte-for-byte in any process or distributed worker
(kernel versions carry the whole address: ``gen@<seed>:<size>:<mix>#``
``<group>``).
"""

from repro.scenarios.factory import (
    FACTORY_VERSION,
    GROUP_SIZE,
    MIXES,
    Expected,
    GeneratedScenario,
    generate_scenario,
    generate_scenarios,
    generated_version,
    parse_generated_version,
)
from repro.scenarios.fuzz import (
    OPERATORS,
    FuzzReport,
    MutantOutcome,
    fuzz_corpus,
    mutate_unit,
)
from repro.scenarios.manifest import (
    MANIFEST_NAME,
    load_corpus,
    manifest_text,
    read_manifest,
    write_corpus,
)
from repro.scenarios.model import (
    GeneratedCorpus,
    GeneratedCorpusProvider,
    generated_kernel_for_version,
    scenario_discrepancies,
)

__all__ = [
    "Expected",
    "FACTORY_VERSION",
    "FuzzReport",
    "GROUP_SIZE",
    "GeneratedCorpus",
    "GeneratedCorpusProvider",
    "GeneratedScenario",
    "MANIFEST_NAME",
    "MIXES",
    "MutantOutcome",
    "OPERATORS",
    "fuzz_corpus",
    "generate_scenario",
    "generate_scenarios",
    "generated_kernel_for_version",
    "generated_version",
    "load_corpus",
    "manifest_text",
    "mutate_unit",
    "parse_generated_version",
    "read_manifest",
    "scenario_discrepancies",
    "write_corpus",
]

"""Stages and stage reports: the explicit update-lifecycle pipeline.

The paper's end-to-end flow — pre/post build, object diff, pack
creation, module load, run-pre matching, stop_machine + stack check
(§3–§4) — used to exist only as implicit call chains.  This module
makes each step an explicit, named **stage** that emits a
:class:`StageReport` (outcome, wall time, counters, artifacts) into a
:class:`~repro.pipeline.trace.Trace` tree, so a failed or slow run
reports a *stage*, not a total.

A :class:`Stage` is a context manager.  Entering appends a fresh report
under the trace's current stage (stages nest by lexical scope);
exiting records the wall time and, if an exception crossed the
boundary, marks the report failed and attaches a :class:`StageContext`
to the error (innermost stage wins) so ``except`` clauses — and users
reading an abort message — learn which stage, unit, function, and
retry count rejected the update.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError

#: stage outcomes
OK = "ok"
FAILED = "failed"
SKIPPED = "skipped"


@dataclass
class StageContext:
    """Where in the pipeline an abort happened.

    Attached to the raised :class:`~repro.errors.ReproError` as
    ``stage_context`` by the innermost enclosing :class:`Stage`.
    """

    stage: str  #: slash-joined stage path, e.g. ``"apply/stop_machine"``
    unit: str = ""
    function: str = ""
    retries: int = 0

    def describe(self) -> str:
        parts = ["stage %s" % self.stage]
        if self.unit:
            parts.append("unit %s" % self.unit)
        if self.function:
            parts.append("function %s" % self.function)
        if self.retries:
            parts.append("attempt %d" % self.retries)
        return ", ".join(parts)


@dataclass
class StageReport:
    """What one stage did: outcome, wall time, counters, artifacts.

    ``counters`` hold deterministic integers (unit counts, bytes,
    retry attempts) — never cache or timing state, so reports from a
    parallel run compare byte-identical to a sequential one after
    :func:`~repro.pipeline.normalize.scrub_report`.  ``artifacts`` are
    small strings naming what the stage worked on (unit, function,
    offending thread); the last value written wins, which on a failure
    is the item being processed when the stage aborted.
    """

    name: str
    outcome: str = OK
    wall_ms: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)
    error: str = ""
    children: List["StageReport"] = field(default_factory=list)

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def child(self, name: str) -> Optional["StageReport"]:
        for child in self.children:
            if child.name == name:
                return child
        return None

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "StageReport"]]:
        """Yield ``(path, report)`` for this report and every descendant."""
        path = prefix + self.name
        yield path, self
        for child in self.children:
            yield from child.walk(path + "/")

    def total_ms(self) -> float:
        return self.wall_ms

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "outcome": self.outcome,
            "wall_ms": self.wall_ms,
            "counters": dict(self.counters),
            "artifacts": dict(self.artifacts),
            "error": self.error,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StageReport":
        return cls(
            name=str(data.get("name", "")),
            outcome=str(data.get("outcome", OK)),
            wall_ms=float(data.get("wall_ms", 0.0)),  # type: ignore[arg-type]
            counters=dict(data.get("counters", {})),  # type: ignore[arg-type]
            artifacts=dict(data.get("artifacts", {})),  # type: ignore[arg-type]
            error=str(data.get("error", "")),
            children=[cls.from_dict(c)
                      for c in data.get("children", [])],  # type: ignore
        )

    def render(self, indent: int = 0) -> List[str]:
        """Human-readable listing of this report subtree."""
        marker = {OK: " ", FAILED: "!", SKIPPED: "-"}.get(self.outcome, "?")
        extras = " ".join("%s=%d" % kv for kv in sorted(self.counters.items()))
        line = "%s%s %-20s %9.2f ms  %-7s %s" % (
            "  " * indent, marker, self.name, self.wall_ms, self.outcome,
            extras)
        lines = [line.rstrip()]
        for key, value in sorted(self.artifacts.items()):
            lines.append("%s    %s: %s" % ("  " * indent, key, value))
        if self.error:
            lines.append("%s    error: %s" % ("  " * indent, self.error))
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


class Stage:
    """Context manager recording one pipeline stage into a trace.

    ``__enter__`` returns the :class:`StageReport` so the body can add
    counters and artifacts in place::

        with trace.stage("run-pre") as rep:
            rep.artifacts["unit"] = unit_name
            rep.count("functions", len(matched))
    """

    def __init__(self, trace: "Trace", name: str):  # noqa: F821
        self.trace = trace
        self.report = StageReport(name=name)
        self._path = name
        self._start = 0.0

    def __enter__(self) -> StageReport:
        stack = self.trace._stack
        parent = stack[-1] if stack else self.trace.root
        parent.children.append(self.report)
        stack.append(self.report)
        self._path = "/".join(r.name for r in stack)
        self._start = time.perf_counter()
        return self.report

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.report.wall_ms = (time.perf_counter() - self._start) * 1000.0
        self.trace._stack.pop()
        if exc is not None:
            self.report.outcome = FAILED
            if not self.report.error:
                self.report.error = "%s: %s" % (type(exc).__name__, exc)
            if isinstance(exc, ReproError) and exc.stage_context is None:
                exc.stage_context = StageContext(
                    stage=self._path,
                    unit=self.report.artifacts.get("unit", ""),
                    function=self.report.artifacts.get("function", ""),
                    retries=self.report.counters.get("attempts", 0))
        return False

"""Wall-clock normalization, in one place.

"Parallel results are byte-identical to sequential" is checked by
comparing results after stripping everything that is wall time and
nothing else.  Exactly two things qualify: a ``CveResult``'s ``stop_ms``
(the measured stop_machine window) and every ``wall_ms`` in its trace.
This module is the single scrubber both
``evaluation.engine.normalize_result`` and the harness's
``CveResult.normalized()`` delegate to, so trace timings and comparison
results cannot drift apart.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

from repro.pipeline.stage import StageReport
from repro.pipeline.trace import Trace


def scrub_report(report: StageReport) -> StageReport:
    """A copy of ``report`` with every wall time zeroed, recursively."""
    return replace(report, wall_ms=0.0,
                   children=[scrub_report(c) for c in report.children])


def scrub_trace(trace: Optional[Trace]) -> Optional[Trace]:
    """A copy of ``trace`` with every stage's wall time zeroed."""
    if trace is None:
        return None
    return Trace(label=trace.label, root=scrub_report(trace.root))


def normalize_cve_result(result: Any) -> Any:
    """A copy of a ``CveResult`` with all wall-clock state zeroed.

    Works on any dataclass with a ``stop_ms`` field and an optional
    ``trace`` field (kept duck-typed so this module does not import the
    evaluation package).
    """
    kwargs: dict = {"stop_ms": 0.0}
    if getattr(result, "trace", None) is not None:
        kwargs["trace"] = scrub_trace(result.trace)
    return replace(result, **kwargs)

"""The staged update lifecycle (pipeline, tracing, failure reports).

The Ksplice flow — generate → build → boot → create (patch, pre/post
builds, object diff, packaging) → apply (load, run-pre, plan,
stop_machine/stack-check, install) → stress — runs as explicit named
stages.  Each stage emits a :class:`StageReport`; a :class:`Trace`
collects them as a tree per lifecycle run; aborts carry a
:class:`StageContext` on the raised error naming the stage, unit,
function, and retry count; and :mod:`repro.pipeline.normalize` is the
single place wall-clock state is scrubbed for deterministic
comparisons.  :mod:`repro.pipeline.store` persists the last run's
traces for the CLI ``trace`` view.
"""

from repro.pipeline.stage import (
    FAILED,
    OK,
    SKIPPED,
    Stage,
    StageContext,
    StageReport,
)
from repro.pipeline.trace import Trace
from repro.pipeline.normalize import (
    normalize_cve_result,
    scrub_report,
    scrub_trace,
)
from repro.pipeline.store import (
    cache_root,
    default_trace_path,
    load_run,
    save_run,
)

__all__ = [
    "FAILED",
    "OK",
    "SKIPPED",
    "Stage",
    "StageContext",
    "StageReport",
    "Trace",
    "cache_root",
    "default_trace_path",
    "load_run",
    "normalize_cve_result",
    "save_run",
    "scrub_report",
    "scrub_trace",
]

"""Trace: a tree of stage reports for one lifecycle run.

One :class:`Trace` covers one logical operation — one CVE evaluation,
one ksplice-create, one apply — and owns a tree of
:class:`~repro.pipeline.stage.StageReport` nodes.  Stages nest by
lexical scope: ``trace.stage(...)`` inside an open stage attaches the
new report as a child, so ``core.apply(pack, trace=trace)`` called
inside the harness's ``apply`` stage lands its load/run-pre/
stop_machine reports under that stage automatically.

Traces are plain dataclasses: picklable (they ride back from worker
processes inside each ``CveResult``) and JSON-serializable (the CLI
``trace`` view reads the last run back from disk).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.pipeline.stage import FAILED, SKIPPED, Stage, StageReport


@dataclass
class Trace:
    """A labelled tree of stage reports."""

    label: str = ""
    root: StageReport = field(
        default_factory=lambda: StageReport(name="<root>"))
    #: open-stage stack; bookkeeping only — excluded from equality so a
    #: finished trace compares by structure, and empty once every stage
    #: has exited.
    _stack: List[StageReport] = field(default_factory=list, compare=False,
                                      repr=False)

    # -- recording ----------------------------------------------------------

    def stage(self, name: str) -> Stage:
        """A context manager for one named stage (nests by scope)."""
        return Stage(self, name)

    def skip(self, name: str, reason: str = "") -> StageReport:
        """Record a stage that deliberately did not run."""
        report = StageReport(name=name, outcome=SKIPPED, error=reason)
        parent = self._stack[-1] if self._stack else self.root
        parent.children.append(report)
        return report

    # -- reading ------------------------------------------------------------

    @property
    def reports(self) -> List[StageReport]:
        """The top-level stage reports, in execution order."""
        return self.root.children

    def find(self, path: str) -> Optional[StageReport]:
        """Look a report up by slash path, e.g. ``"apply/stop_machine"``."""
        node: Optional[StageReport] = self.root
        for part in path.split("/"):
            node = node.child(part) if node is not None else None
            if node is None:
                return None
        return node

    def stage_ms(self, name: str) -> float:
        report = self.find(name)
        return report.wall_ms if report is not None else 0.0

    def walk(self) -> Iterator[Tuple[str, StageReport]]:
        """``(path, report)`` for every report, depth-first."""
        for child in self.root.children:
            yield from child.walk()

    def failed_stage(self) -> str:
        """The deepest failed stage path, or ``""`` if everything passed."""
        deepest = ""
        for path, report in self.walk():
            if report.outcome == FAILED and path.count("/") >= \
                    deepest.count("/"):
                deepest = path
        return deepest

    def stage_totals(self) -> Dict[str, float]:
        """Top-level stage name → wall milliseconds."""
        totals: Dict[str, float] = {}
        for report in self.reports:
            totals[report.name] = totals.get(report.name, 0.0) \
                + report.wall_ms
        return totals

    # -- serialization ------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        """Pickle only the finished tree, never the open-stage stack.

        Traces cross process *and host* boundaries (the distributed
        fabric streams each ``CveResult`` — trace attached — back over
        TCP the moment it exists).  The stack is in-process
        bookkeeping: it is empty once every stage has exited, and
        shipping it would only bloat the frame and invite confusion on
        the receiving side.
        """
        return {"label": self.label, "root": self.root}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.label = state["label"]  # type: ignore[assignment]
        self.root = state["root"]  # type: ignore[assignment]
        self._stack = []

    def to_dict(self) -> Dict[str, object]:
        return {"label": self.label, "root": self.root.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Trace":
        return cls(label=str(data.get("label", "")),
                   root=StageReport.from_dict(
                       data.get("root", {"name": "<root>"})))  # type: ignore

    def render(self) -> str:
        lines = [self.label or "<trace>"]
        for report in self.reports:
            lines.extend(report.render(indent=1))
        return "\n".join(lines)

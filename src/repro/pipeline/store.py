"""Persisting the last run's traces (the CLI ``trace`` view).

``repro evaluate`` and ``repro demo`` save their traces here;
``repro trace`` reads them back, so the per-stage breakdown of the last
run survives the process that produced it.  The file lives under the
shared cache root (``REPRO_CACHE_DIR``, default ``~/.cache/
repro-ksplice``) — the same root the disk cache tier uses — or wherever
``REPRO_TRACE_FILE`` points.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.pipeline.trace import Trace

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
TRACE_FILE_ENV = "REPRO_TRACE_FILE"


def cache_root() -> str:
    """The shared on-disk root for caches and the last-run trace."""
    return os.environ.get(CACHE_DIR_ENV) or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-ksplice")


def default_trace_path() -> str:
    return os.environ.get(TRACE_FILE_ENV) or os.path.join(
        cache_root(), "last-trace.json")


def save_run(traces: List[Trace], meta: Optional[Dict[str, object]] = None,
             path: Optional[str] = None) -> str:
    """Write a run's traces as JSON; returns the path written."""
    path = path or default_trace_path()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    payload = {"meta": meta or {},
               "traces": [trace.to_dict() for trace in traces]}
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)
    return path


def load_run(path: Optional[str] = None,
             ) -> Tuple[Dict[str, object], List[Trace]]:
    """Read the last saved run back; raises ReproError when absent."""
    path = path or default_trace_path()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise ReproError("no saved trace at %s (run `repro evaluate` "
                         "or `repro demo` first)" % path)
    except (OSError, ValueError) as exc:
        raise ReproError("cannot read trace file %s: %s" % (path, exc))
    traces = [Trace.from_dict(t) for t in payload.get("traces", [])]
    return payload.get("meta", {}), traces

"""Tokenizer for MiniC."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import CompileError

KEYWORDS = {
    "int", "void", "struct", "static", "inline", "extern",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "switch", "case", "default", "sizeof",
}

# Longest-match-first punctuation.
PUNCTUATION = (
    "<<=", ">>=",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "{", "}", "(", ")", "[", "]", ";", ",", ".",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^", "?", ":",
)


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int

    def __repr__(self) -> str:
        return "Token(%s, %r, line=%d)" % (self.kind.value, self.text, self.line)


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<num>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>%s)
    """ % "|".join(re.escape(p) for p in PUNCTUATION),
    re.VERBOSE | re.DOTALL,
)


def _iter_tokens(source: str) -> Iterator[Token]:
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise CompileError(
                "line %d: unexpected character %r" % (line, source[pos]))
        text = match.group(0)
        line += text.count("\n")
        pos = match.end()
        if match.lastgroup in ("ws", "line_comment", "block_comment"):
            continue
        token_line = line - text.count("\n")
        if match.lastgroup in ("hex", "num"):
            yield Token(TokenKind.NUMBER, text, token_line)
        elif match.lastgroup == "ident":
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            yield Token(kind, text, token_line)
        else:
            yield Token(TokenKind.PUNCT, text, token_line)
    yield Token(TokenKind.EOF, "", line)


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniC ``source``; the list always ends with an EOF token."""
    return list(_iter_tokens(source))

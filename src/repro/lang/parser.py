"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import CompileError
from repro.lang import ast
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.types import (
    INT,
    ArrayType,
    PointerType,
    Type,
    TypeTable,
)

_HOOK_MACROS = {
    "__ksplice_pre_apply__": ".ksplice_pre_apply",
    "__ksplice_apply__": ".ksplice_apply",
    "__ksplice_post_apply__": ".ksplice_post_apply",
    "__ksplice_pre_reverse__": ".ksplice_pre_reverse",
    "__ksplice_reverse__": ".ksplice_reverse",
    "__ksplice_post_reverse__": ".ksplice_post_reverse",
}

# Binary operator precedence, loosest first.
_BINARY_LEVELS: Tuple[Tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)

_COMPOUND_ASSIGN = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


class Parser:
    """Parses one compilation unit."""

    def __init__(self, source: str, unit_name: str = "<unit>"):
        self._tokens = tokenize(source)
        self._pos = 0
        self._unit_name = unit_name
        self.types = TypeTable()

    # -- token plumbing ----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        idx = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, text: str) -> bool:
        token = self._peek()
        return token.kind in (TokenKind.PUNCT, TokenKind.KEYWORD) and \
            token.text == text

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            token = self._peek()
            raise CompileError(
                "%s:%d: expected %r, found %r"
                % (self._unit_name, token.line, text, token.text or "<eof>"))
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise CompileError(
                "%s:%d: expected identifier, found %r"
                % (self._unit_name, token.line, token.text or "<eof>"))
        self._advance()
        return token.text

    def _error(self, message: str) -> CompileError:
        return CompileError(
            "%s:%d: %s" % (self._unit_name, self._peek().line, message))

    # -- types ---------------------------------------------------------------

    def _at_type_start(self) -> bool:
        return self._check("int") or self._check("void") or self._check("struct")

    def _parse_base_type(self) -> Type:
        if self._accept("int"):
            base: Type = INT
        elif self._accept("void"):
            base = INT  # void only appears as a return type; treat as int-0
        elif self._accept("struct"):
            tag = self._expect_ident()
            base = self.types.declare_struct(tag)
        else:
            raise self._error("expected type")
        while self._accept("*"):
            base = PointerType(base)
        return base

    # -- top level -----------------------------------------------------------

    def parse_unit(self) -> ast.Unit:
        unit = ast.Unit(name=self._unit_name)
        while self._peek().kind is not TokenKind.EOF:
            unit.decls.extend(self._parse_top_decl())
        return unit

    def _parse_top_decl(self) -> List[object]:
        token = self._peek()
        if token.kind is TokenKind.IDENT and token.text in _HOOK_MACROS:
            return [self._parse_hook_macro()]
        if self._check("struct") and self._peek(2).text == "{":
            return [self._parse_struct_def()]

        is_extern = self._accept("extern")
        is_static = self._accept("static")
        is_inline = self._accept("inline")
        if not is_static and self._accept("static"):
            is_static = True  # "inline static" ordering

        typ = self._parse_base_type()
        name = self._expect_ident()
        if self._check("("):
            return [self._parse_function(name, typ, is_static, is_inline,
                                         is_extern)]
        if is_inline:
            raise self._error("inline on a variable")
        return self._parse_global_vars(name, typ, is_static, is_extern)

    def _parse_hook_macro(self) -> ast.KspliceHook:
        macro = self._advance().text
        self._expect("(")
        function = self._expect_ident()
        self._expect(")")
        self._expect(";")
        return ast.KspliceHook(section=_HOOK_MACROS[macro], function=function)

    def _parse_struct_def(self) -> ast.StructDef:
        self._expect("struct")
        tag = self._expect_ident()
        self._expect("{")
        fields: List[Tuple[str, Type]] = []
        while not self._accept("}"):
            ftype = self._parse_base_type()
            fname = self._expect_ident()
            if self._accept("["):
                count = self._parse_const_expr()
                self._expect("]")
                ftype = ArrayType(ftype, count)
            self._expect(";")
            fields.append((fname, ftype))
        self._expect(";")
        self.types.define_struct(tag, fields)
        return ast.StructDef(tag=tag, fields=fields)

    def _parse_function(self, name: str, return_type: Type, is_static: bool,
                        is_inline: bool, is_extern: bool) -> ast.FunctionDef:
        self._expect("(")
        params: List[ast.Param] = []
        if not self._check(")"):
            if self._check("void") and self._peek(1).text == ")":
                self._advance()
            else:
                while True:
                    ptype = self._parse_base_type()
                    pname = self._expect_ident()
                    params.append(ast.Param(name=pname, typ=ptype))
                    if not self._accept(","):
                        break
        self._expect(")")
        if self._accept(";"):
            body: Optional[ast.Block] = None
        else:
            if is_extern:
                raise self._error("extern function with a body")
            body = self._parse_block()
        return ast.FunctionDef(name=name, params=params,
                               return_type=return_type, body=body,
                               is_static=is_static, is_inline=is_inline)

    def _parse_global_vars(self, first_name: str, typ: Type, is_static: bool,
                           is_extern: bool) -> List[object]:
        out: List[object] = []
        name = first_name
        while True:
            var_type = typ
            if self._accept("["):
                count = self._parse_const_expr()
                self._expect("]")
                var_type = ArrayType(typ, count)
            init: Optional[List[int]] = None
            if self._accept("="):
                if is_extern:
                    raise self._error("extern variable with initializer")
                init = self._parse_initializer(var_type)
            out.append(ast.GlobalVar(name=name, typ=var_type, init=init,
                                     is_static=is_static,
                                     is_extern=is_extern))
            if self._accept(","):
                name = self._expect_ident()
                continue
            self._expect(";")
            return out

    def _parse_initializer(self, typ: Type) -> List[int]:
        if self._accept("{"):
            values: List[int] = []
            while not self._accept("}"):
                values.append(self._parse_const_expr())
                if not self._check("}"):
                    self._expect(",")
            if isinstance(typ, ArrayType):
                want = typ.size // 4
                if len(values) > want:
                    raise self._error("too many initializer values")
                values += [0] * (want - len(values))
            return values
        return [self._parse_const_expr()]

    # -- constant expressions -------------------------------------------------

    def _parse_const_expr(self) -> int:
        expr = self._parse_expr()
        return self._const_eval(expr)

    def _const_eval(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.SizeOf):
            return expr.measured.size
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_eval(expr.operand)
        if isinstance(expr, ast.Unary) and expr.op == "~":
            return ~self._const_eval(expr.operand)
        if isinstance(expr, ast.Binary):
            left = self._const_eval(expr.left)
            right = self._const_eval(expr.right)
            ops = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right if right else 0,
                "%": lambda: left % right if right else 0,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "|": lambda: left | right,
                "&": lambda: left & right,
                "^": lambda: left ^ right,
            }
            if expr.op in ops:
                return ops[expr.op]()
        raise self._error("expression is not constant")

    # -- statements ------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        self._expect("{")
        block = ast.Block()
        while not self._accept("}"):
            block.statements.append(self._parse_stmt())
        return block

    def _as_block(self, stmt: ast.Stmt) -> ast.Block:
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block(statements=[stmt])

    def _parse_stmt(self) -> ast.Stmt:
        if self._check("{"):
            return self._parse_block()
        if self._accept(";"):
            return ast.Block()
        if self._accept("if"):
            self._expect("(")
            cond = self._parse_expr()
            self._expect(")")
            then = self._as_block(self._parse_stmt())
            otherwise = None
            if self._accept("else"):
                otherwise = self._as_block(self._parse_stmt())
            return ast.If(cond=cond, then=then, otherwise=otherwise)
        if self._accept("while"):
            self._expect("(")
            cond = self._parse_expr()
            self._expect(")")
            return ast.While(cond=cond, body=self._as_block(self._parse_stmt()))
        if self._accept("do"):
            body = self._as_block(self._parse_stmt())
            self._expect("while")
            self._expect("(")
            cond = self._parse_expr()
            self._expect(")")
            self._expect(";")
            return ast.DoWhile(cond=cond, body=body)
        if self._accept("for"):
            return self._parse_for()
        if self._accept("switch"):
            return self._parse_switch()
        if self._accept("return"):
            value = None if self._check(";") else self._parse_expr()
            self._expect(";")
            return ast.Return(value=value)
        if self._accept("break"):
            self._expect(";")
            return ast.Break()
        if self._accept("continue"):
            self._expect(";")
            return ast.Continue()
        if self._check("static") or self._at_type_start():
            return self._parse_local_decl()
        expr = self._parse_expr()
        self._expect(";")
        return ast.ExprStmt(expr=expr)

    def _parse_for(self) -> ast.Stmt:
        """Desugar ``for (init; cond; step) body`` into a while loop."""
        self._expect("(")
        statements: List[ast.Stmt] = []
        if not self._check(";"):
            if self._at_type_start():
                statements.append(self._parse_local_decl())
            else:
                statements.append(ast.ExprStmt(self._parse_expr()))
                self._expect(";")
        else:
            self._expect(";")
        cond: ast.Expr = ast.Number(1)
        if not self._check(";"):
            cond = self._parse_expr()
        self._expect(";")
        step: Optional[ast.Expr] = None
        if not self._check(")"):
            step = self._parse_expr()
        self._expect(")")
        body = self._as_block(self._parse_stmt())
        statements.append(ast.While(cond=cond, body=body, step=step))
        return ast.Block(statements=statements)

    def _parse_switch(self) -> ast.Stmt:
        """``switch (expr) { case N: ... default: ... }`` with C
        fallthrough semantics; ``break`` leaves the switch."""
        self._expect("(")
        selector = self._parse_expr()
        self._expect(")")
        self._expect("{")
        switch = ast.Switch(selector=selector)
        current: Optional[ast.SwitchCase] = None
        while not self._accept("}"):
            if self._accept("case"):
                value = self._parse_const_expr()
                self._expect(":")
                current = ast.SwitchCase(value=value)
                switch.cases.append(current)
                continue
            if self._accept("default"):
                self._expect(":")
                current = ast.SwitchCase(value=None)
                switch.cases.append(current)
                continue
            if current is None:
                raise self._error("statement before first case label")
            current.body.append(self._parse_stmt())
        defaults = [c for c in switch.cases if c.value is None]
        if len(defaults) > 1:
            raise self._error("multiple default labels in switch")
        values = [c.value for c in switch.cases if c.value is not None]
        if len(values) != len(set(values)):
            raise self._error("duplicate case value in switch")
        return switch

    def _parse_local_decl(self) -> ast.Stmt:
        is_static = self._accept("static")
        typ = self._parse_base_type()
        block = ast.Block()
        while True:
            name = self._expect_ident()
            var_type = typ
            if self._accept("["):
                count = self._parse_const_expr()
                self._expect("]")
                var_type = ArrayType(typ, count)
            decl = ast.LocalDecl(name=name, typ=var_type, is_static=is_static)
            if self._accept("="):
                if is_static:
                    decl.static_init = self._parse_const_expr()
                else:
                    decl.init = self._parse_expr()
            block.statements.append(decl)
            if self._accept(","):
                continue
            self._expect(";")
            break
        if len(block.statements) == 1:
            return block.statements[0]
        return block

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        if self._accept("="):
            return ast.Assign(target=left, value=self._parse_assignment())
        for op_text, bare_op in _COMPOUND_ASSIGN.items():
            if self._accept(op_text):
                value = self._parse_assignment()
                return ast.Assign(target=left,
                                  value=ast.Binary(op=bare_op, left=left,
                                                   right=value))
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept("?"):
            then = self._parse_expr()
            self._expect(":")
            otherwise = self._parse_ternary()
            return ast.Conditional(cond=cond, then=then, otherwise=otherwise)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while True:
            matched = None
            for op in _BINARY_LEVELS[level]:
                if self._check(op):
                    matched = op
                    break
            if matched is None:
                return left
            self._advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(op=matched, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        for op in ("-", "!", "~", "*", "&"):
            if self._accept(op):
                return ast.Unary(op=op, operand=self._parse_unary())
        if self._accept("++"):
            return ast.IncDec(target=self._parse_unary(), delta=1,
                              is_prefix=True)
        if self._accept("--"):
            return ast.IncDec(target=self._parse_unary(), delta=-1,
                              is_prefix=True)
        if self._accept("sizeof"):
            self._expect("(")
            measured = self._parse_base_type()
            self._expect(")")
            return ast.SizeOf(measured=measured)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._accept("["):
                index = self._parse_expr()
                self._expect("]")
                expr = ast.Index(base=expr, index=index)
            elif self._accept("->"):
                expr = ast.FieldAccess(base=expr,
                                       fieldname=self._expect_ident(),
                                       arrow=True)
            elif self._accept("."):
                expr = ast.FieldAccess(base=expr,
                                       fieldname=self._expect_ident(),
                                       arrow=False)
            elif self._accept("++"):
                expr = ast.IncDec(target=expr, delta=1, is_prefix=False)
            elif self._accept("--"):
                expr = ast.IncDec(target=expr, delta=-1, is_prefix=False)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Number(int(token.text, 0))
        if token.kind is TokenKind.IDENT:
            name = self._advance().text
            if self._accept("("):
                args: List[ast.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept(","):
                            break
                self._expect(")")
                return ast.Call(callee=name, args=args)
            return ast.Name(ident=name)
        if self._accept("("):
            expr = self._parse_expr()
            self._expect(")")
            return expr
        raise self._error("expected expression, found %r"
                          % (token.text or "<eof>"))


def parse_unit(source: str, unit_name: str = "<unit>") -> ast.Unit:
    """Parse MiniC ``source`` into a :class:`repro.lang.ast.Unit`."""
    parser = Parser(source, unit_name)
    unit = parser.parse_unit()
    unit.types = parser.types
    return unit

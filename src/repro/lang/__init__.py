"""MiniC: the C subset the simulated kernel is written in.

MiniC keeps every C feature the Ksplice evaluation leans on — function
prototypes with implicit casts at call sites, ``static`` file-scope
variables (ambiguous local symbols), ``static`` locals, structs whose
layout a patch can change, ``inline`` (and compiler-chosen inlining of
functions *without* the keyword) — while staying small enough to compile
with a from-scratch code generator.
"""

from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.parser import parse_unit
from repro.lang import ast
from repro.lang.types import (
    IntType,
    PointerType,
    StructType,
    Type,
    TypeTable,
)

__all__ = [
    "IntType",
    "PointerType",
    "StructType",
    "Token",
    "TokenKind",
    "Type",
    "TypeTable",
    "ast",
    "parse_unit",
    "tokenize",
]

"""MiniC's type system.

Everything is a 32-bit scalar at the machine level; types exist to give
pointer arithmetic its scaling, struct fields their offsets, and the
compiler enough information to size storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError

WORD_SIZE = 4


class Type:
    """Base class for MiniC types."""

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def is_pointer(self) -> bool:
        return False


@dataclass(frozen=True)
class IntType(Type):
    @property
    def size(self) -> int:
        return WORD_SIZE

    def __str__(self) -> str:
        return "int"


INT = IntType()


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type

    @property
    def size(self) -> int:
        return WORD_SIZE

    @property
    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return "%s*" % self.pointee


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    count: int

    @property
    def size(self) -> int:
        return self.element.size * self.count

    def __str__(self) -> str:
        return "%s[%d]" % (self.element, self.count)


@dataclass
class StructType(Type):
    """A named struct; fields are (name, type) in declaration order."""

    tag: str
    fields: List[Tuple[str, Type]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(ftype.size for _, ftype in self.fields)

    def field_offset(self, name: str) -> int:
        offset = 0
        for fname, ftype in self.fields:
            if fname == name:
                return offset
            offset += ftype.size
        raise CompileError("struct %s has no field %r" % (self.tag, name))

    def field_type(self, name: str) -> Type:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise CompileError("struct %s has no field %r" % (self.tag, name))

    def has_field(self, name: str) -> bool:
        return any(fname == name for fname, _ in self.fields)

    def __str__(self) -> str:
        return "struct %s" % self.tag

    # StructType is mutable (fields list); identity-based hashing is what
    # we want: one struct tag, one type object per compilation unit.
    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class TypeTable:
    """Per-compilation-unit registry of struct tags."""

    def __init__(self) -> None:
        self._structs: Dict[str, StructType] = {}

    def declare_struct(self, tag: str) -> StructType:
        """Get-or-create a (possibly incomplete) struct type."""
        if tag not in self._structs:
            self._structs[tag] = StructType(tag=tag)
        return self._structs[tag]

    def define_struct(self, tag: str, fields: List[Tuple[str, Type]]) -> StructType:
        struct = self.declare_struct(tag)
        if struct.fields:
            raise CompileError("redefinition of struct %s" % tag)
        struct.fields = list(fields)
        return struct

    def struct(self, tag: str) -> StructType:
        if tag not in self._structs:
            raise CompileError("unknown struct %s" % tag)
        return self._structs[tag]

    def known_tags(self) -> List[str]:
        return sorted(self._structs)


def element_type(of: Type) -> Optional[Type]:
    """The element type a pointer/array steps over, or None."""
    if isinstance(of, PointerType):
        return of.pointee
    if isinstance(of, ArrayType):
        return of.element
    return None

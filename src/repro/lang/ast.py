"""Abstract syntax tree node definitions for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lang.types import Type


# ---------------------------------------------------------------------------
# Expressions


class Expr:
    pass


@dataclass
class Number(Expr):
    value: int


@dataclass
class Name(Expr):
    ident: str


@dataclass
class Unary(Expr):
    op: str  # "-", "!", "~", "*", "&"
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    target: Expr  # Name, Unary("*"), Index, FieldAccess
    value: Expr


@dataclass
class Call(Expr):
    callee: str
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class FieldAccess(Expr):
    base: Expr
    fieldname: str
    arrow: bool  # True for ->, False for .


@dataclass
class SizeOf(Expr):
    measured: Type


@dataclass
class IncDec(Expr):
    """``++x`` / ``x++`` / ``--x`` / ``x--`` (desugared in codegen)."""

    target: Expr
    delta: int       # +1 or -1
    is_prefix: bool


@dataclass
class Conditional(Expr):
    """Ternary ``cond ? a : b``."""

    cond: Expr
    then: Expr
    otherwise: Expr


# ---------------------------------------------------------------------------
# Statements


class Stmt:
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class LocalDecl(Stmt):
    name: str
    typ: Type
    init: Optional[Expr] = None
    is_static: bool = False
    static_init: int = 0  # constant initializer for static locals


@dataclass
class If(Stmt):
    cond: Expr
    then: "Block"
    otherwise: Optional["Block"] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: "Block"
    #: for-loop step expression; ``continue`` jumps to it, not the top
    step: Optional[Expr] = None


@dataclass
class DoWhile(Stmt):
    """``do body while (cond);`` — body runs at least once; ``continue``
    jumps to the condition test."""

    cond: Expr
    body: "Block"


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class SwitchCase:
    """One ``case N:`` (or ``default:``) arm; bodies fall through."""

    value: Optional[int]  # None for default
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    selector: Expr
    cases: List[SwitchCase] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Top-level declarations


@dataclass
class Param:
    name: str
    typ: Type


@dataclass
class FunctionDef:
    name: str
    params: List[Param]
    return_type: Type
    body: Optional[Block]  # None for prototypes
    is_static: bool = False
    is_inline: bool = False

    @property
    def is_prototype(self) -> bool:
        return self.body is None


@dataclass
class GlobalVar:
    name: str
    typ: Type
    init: Optional[List[int]] = None  # flattened constant initializer words
    is_static: bool = False
    is_extern: bool = False


@dataclass
class StructDef:
    tag: str
    fields: List[Tuple[str, Type]]


@dataclass
class KspliceHook:
    """``__ksplice_apply__(fn);`` and friends (§5.3 of the paper)."""

    section: str  # one of repro.objfile.HOOK_SECTIONS
    function: str


@dataclass
class Unit:
    """One parsed compilation unit."""

    name: str
    decls: List[object] = field(default_factory=list)
    types: Optional[object] = None  # TypeTable, set by the parser

    def functions(self) -> List[FunctionDef]:
        return [d for d in self.decls
                if isinstance(d, FunctionDef) and not d.is_prototype]

    def prototypes(self) -> List[FunctionDef]:
        return [d for d in self.decls
                if isinstance(d, FunctionDef) and d.is_prototype]

    def global_vars(self) -> List[GlobalVar]:
        return [d for d in self.decls if isinstance(d, GlobalVar)]

    def hooks(self) -> List[KspliceHook]:
        return [d for d in self.decls if isinstance(d, KspliceHook)]

    def find_function(self, name: str) -> Optional[FunctionDef]:
        for fn in self.functions():
            if fn.name == name:
                return fn
        return None

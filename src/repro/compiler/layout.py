"""Object-file layout: placing compiled functions and data into sections.

Two layouts are supported, selected by :class:`~repro.compiler.driver.
CompilerOptions`:

* **merged** (default, how distribution kernels are built): all functions
  of a unit share one ``.text`` section, 16-byte aligned, with intra-unit
  calls and jumps resolved at assembly time (short encodings where they
  fit); initialized data shares ``.data``, zero-initialized data ``.bss``.
* **function/data sections** (``-ffunction-sections -fdata-sections``):
  every function becomes ``.text.<name>`` and every datum
  ``.data.<name>``/``.bss.<name>``, so *all* cross-references — including
  ones inside the same unit — are relocations.  This is the layout
  ksplice-create builds with (§3.2), which keeps sections free of
  position assumptions.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.assembler import Align, Item, Label, assemble
from repro.errors import CompileError
from repro.lang import ast
from repro.lang.types import Type
from repro.objfile import (
    ObjectFile,
    Relocation,
    RelocationType,
    Section,
    SectionKind,
    Symbol,
    SymbolBinding,
    SymbolKind,
)
from repro.compiler.codegen import FunctionCode, StaticLocal

_RELOC_TYPE = {"abs32": RelocationType.ABS32, "pc32": RelocationType.PC32}


@dataclass
class DataItem:
    """One variable destined for a data/bss section."""

    symbol: str
    typ: Type
    init_words: Optional[List[int]]  # None or all-zero -> bss
    is_static: bool

    @property
    def is_bss(self) -> bool:
        return self.init_words is None or not any(self.init_words)

    @property
    def size(self) -> int:
        return max(4, self.typ.size)

    def image(self) -> bytes:
        words = list(self.init_words or [])
        want = self.size // 4
        words += [0] * (want - len(words))
        return b"".join(struct.pack("<i", w & 0xFFFFFFFF if w >= 0 else w)
                        for w in words)


def collect_data_items(unit: ast.Unit,
                       static_locals: List[StaticLocal]) -> List[DataItem]:
    """Gather unit globals and promoted static locals, in declaration order."""
    items: List[DataItem] = []
    for gvar in unit.global_vars():
        if gvar.is_extern:
            continue
        items.append(DataItem(symbol=gvar.name, typ=gvar.typ,
                              init_words=gvar.init, is_static=gvar.is_static))
    for static in static_locals:
        init = [static.init] if static.init else None
        items.append(DataItem(symbol=static.symbol, typ=static.typ,
                              init_words=init, is_static=True))
    return items


def _binding(is_static: bool) -> SymbolBinding:
    return SymbolBinding.LOCAL if is_static else SymbolBinding.GLOBAL


def _add_assembled_section(obj: ObjectFile, name: str, kind: SectionKind,
                           items: List[Item], alignment: int,
                           allow_short: bool) -> Dict[str, int]:
    result = assemble(items, allow_short_branches=allow_short)
    section = Section(name=name, kind=kind, data=result.code,
                      alignment=alignment)
    for request in result.relocations:
        section.relocations.append(Relocation(
            offset=request.offset, symbol=request.symbol,
            type=_RELOC_TYPE[request.kind], addend=request.addend))
    obj.add_section(section)
    return result.labels


def layout_merged(unit: ast.Unit, functions: List[FunctionCode],
                  data_items: List[DataItem], align_functions: int,
                  unit_name: str) -> ObjectFile:
    """Build the run-kernel flavour: one .text, one .data, one .bss."""
    obj = ObjectFile(name=unit_name)
    static_fns = {fn.name for fn in unit.functions() if fn.is_static}

    stream: List[Item] = []
    end_labels: Dict[str, str] = {}
    for code in functions:
        if stream:
            stream.append(Align(align_functions))
        stream.extend(code.items)
        end_label = ".Lfnend_%s" % code.name
        end_labels[code.name] = end_label
        stream.append(Label(end_label))
    if stream:
        labels = _add_assembled_section(
            obj, ".text", SectionKind.TEXT, stream,
            alignment=align_functions, allow_short=True)
        for code in functions:
            start = labels[code.name]
            size = labels[end_labels[code.name]] - start
            obj.add_symbol(Symbol(
                name=code.name, binding=_binding(code.name in static_fns),
                kind=SymbolKind.FUNC, section=".text", value=start,
                size=size))

    _layout_data_merged(obj, data_items)
    _layout_hooks(obj, unit)
    obj.ensure_undefined(obj.referenced_symbol_names())
    obj.validate()
    return obj


def layout_split(unit: ast.Unit, functions: List[FunctionCode],
                 data_items: List[DataItem], align_functions: int,
                 unit_name: str, data_sections: bool) -> ObjectFile:
    """Build the pre/post flavour: per-function and per-datum sections."""
    obj = ObjectFile(name=unit_name)
    static_fns = {fn.name for fn in unit.functions() if fn.is_static}

    for code in functions:
        section_name = ".text.%s" % code.name
        # §4.3: "small relative jump instructions can turn into longer
        # jump instructions when -ffunction-sections is enabled" — the
        # split flavour always emits rel32 branch forms, so the pre code
        # differs in encoding (and therefore alignment) from the merged
        # run kernel, which is exactly what run-pre matching bridges.
        labels = _add_assembled_section(
            obj, section_name, SectionKind.TEXT, code.items,
            alignment=align_functions, allow_short=False)
        section = obj.section(section_name)
        obj.add_symbol(Symbol(
            name=code.name, binding=_binding(code.name in static_fns),
            kind=SymbolKind.FUNC, section=section_name,
            value=labels[code.name], size=section.size))

    if data_sections:
        for item in data_items:
            prefix = ".bss" if item.is_bss else ".data"
            section_name = "%s.%s" % (prefix, item.symbol)
            kind = SectionKind.BSS if item.is_bss else SectionKind.DATA
            obj.add_section(Section(name=section_name, kind=kind,
                                    data=item.image(), alignment=4))
            obj.add_symbol(Symbol(
                name=item.symbol, binding=_binding(item.is_static),
                kind=SymbolKind.OBJECT, section=section_name, value=0,
                size=item.size))
    else:
        _layout_data_merged(obj, data_items)

    _layout_hooks(obj, unit)
    obj.ensure_undefined(obj.referenced_symbol_names())
    obj.validate()
    return obj


def _layout_data_merged(obj: ObjectFile, data_items: List[DataItem]) -> None:
    data_image = bytearray()
    bss_image = bytearray()
    data_symbols: List[Tuple[DataItem, int]] = []
    bss_symbols: List[Tuple[DataItem, int]] = []
    for item in data_items:
        if item.is_bss:
            bss_symbols.append((item, len(bss_image)))
            bss_image += item.image()
        else:
            data_symbols.append((item, len(data_image)))
            data_image += item.image()
    if data_image:
        obj.add_section(Section(name=".data", kind=SectionKind.DATA,
                                data=bytes(data_image), alignment=4))
        for item, offset in data_symbols:
            obj.add_symbol(Symbol(
                name=item.symbol, binding=_binding(item.is_static),
                kind=SymbolKind.OBJECT, section=".data", value=offset,
                size=item.size))
    if bss_image:
        obj.add_section(Section(name=".bss", kind=SectionKind.BSS,
                                data=bytes(bss_image), alignment=4))
        for item, offset in bss_symbols:
            obj.add_symbol(Symbol(
                name=item.symbol, binding=_binding(item.is_static),
                kind=SymbolKind.OBJECT, section=".bss", value=offset,
                size=item.size))


def _layout_hooks(obj: ObjectFile, unit: ast.Unit) -> None:
    """Emit .ksplice_* function-pointer tables (the paper's §5.3 macros)."""
    by_section: Dict[str, List[str]] = {}
    for hook in unit.hooks():
        by_section.setdefault(hook.section, []).append(hook.function)
    for section_name, fn_names in by_section.items():
        section = Section(name=section_name, kind=SectionKind.KSPLICE,
                          data=b"\0\0\0\0" * len(fn_names), alignment=4)
        for index, fn_name in enumerate(fn_names):
            if unit.find_function(fn_name) is None:
                raise CompileError(
                    "%s: ksplice hook references unknown function %r"
                    % (unit.name, fn_name))
            section.relocations.append(Relocation(
                offset=4 * index, symbol=fn_name,
                type=RelocationType.ABS32, addend=0))
        obj.add_section(section)

"""The MiniC compiler ("kcc").

The compiler exists to give Ksplice exactly the two build flavours the
paper needs:

* the **run** flavour (``function_sections=False``): one merged ``.text``
  per unit, intra-unit calls and jumps resolved at assembly time (short
  forms where they fit), 16-byte alignment padding between functions —
  the shape of a distribution kernel binary;
* the **pre/post** flavour (``function_sections=True`` +
  ``data_sections=True``): every function and datum in its own section,
  every cross-reference a relocation — the shape ksplice-create's builds
  use so pre-post differencing sees position-independent sections.

Inlining happens at ``opt_level >= 2`` and deliberately inlines small
``static`` functions *without* the ``inline`` keyword, reproducing the
compiler freedom that makes source-level hot updates unsafe (§4.2).
"""

from repro.compiler.driver import (
    CompilerOptions,
    compile_source,
    compile_source_cached,
    compile_unit,
)
from repro.compiler.cache import (
    CacheStats,
    cache_stats,
    clear_caches,
    parse_unit_cached,
)
from repro.compiler.inliner import InlineReport, inline_unit
from repro.compiler.codegen import FunctionCode, compile_function

__all__ = [
    "CacheStats",
    "CompilerOptions",
    "FunctionCode",
    "InlineReport",
    "cache_stats",
    "clear_caches",
    "compile_function",
    "compile_source",
    "compile_source_cached",
    "compile_unit",
    "inline_unit",
    "parse_unit_cached",
]

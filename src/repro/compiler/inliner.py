"""Function inlining.

gcc routinely inlines small static functions even when they are not marked
``inline``; only 4 of the 64 patches in the paper's evaluation touch a
function *declared* inline, yet 20 of 64 touch a function that *was*
inlined in the run kernel.  This pass reproduces that behaviour:

* at ``opt_level >= 2``, any function defined in the unit whose body is a
  single ``return expr;`` and small enough is inlined into its callers,
  ``static`` or not, keyword or not;
* at ``opt_level == 1`` only ``inline``-marked functions are considered;
* at ``opt_level == 0`` nothing is inlined.

A call site is only substituted when doing so is semantics-preserving
under expression substitution: every parameter that is used more than once
(or not at all) must be bound to a side-effect-free argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang import ast

#: Maximum AST node count of the returned expression for keyword-less
#: inlining; ``inline``-marked functions get the larger budget.
SMALL_BODY_NODES = 12
INLINE_KEYWORD_NODES = 48

_MAX_ROUNDS = 4


@dataclass
class InlineReport:
    """Which callees were inlined where: callee -> [(caller, count)]."""

    inlined: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)

    def record(self, callee: str, caller: str, count: int = 1) -> None:
        sites = self.inlined.setdefault(callee, [])
        for idx, (existing_caller, existing_count) in enumerate(sites):
            if existing_caller == caller:
                sites[idx] = (existing_caller, existing_count + count)
                return
        sites.append((caller, count))

    def was_inlined(self, callee: str) -> bool:
        return callee in self.inlined

    def callers_of(self, callee: str) -> List[str]:
        return [caller for caller, _ in self.inlined.get(callee, [])]

    def merge(self, other: "InlineReport") -> None:
        for callee, sites in other.inlined.items():
            for caller, count in sites:
                self.record(callee, caller, count)


def _expr_size(expr: ast.Expr) -> int:
    """AST node count, the inliner's size metric."""
    if isinstance(expr, ast.Unary):
        return 1 + _expr_size(expr.operand)
    if isinstance(expr, ast.Binary):
        return 1 + _expr_size(expr.left) + _expr_size(expr.right)
    if isinstance(expr, ast.Assign):
        return 1 + _expr_size(expr.target) + _expr_size(expr.value)
    if isinstance(expr, ast.Call):
        return 1 + sum(_expr_size(a) for a in expr.args)
    if isinstance(expr, ast.Index):
        return 1 + _expr_size(expr.base) + _expr_size(expr.index)
    if isinstance(expr, ast.FieldAccess):
        return 1 + _expr_size(expr.base)
    if isinstance(expr, ast.IncDec):
        return 1 + _expr_size(expr.target)
    if isinstance(expr, ast.Conditional):
        return 1 + _expr_size(expr.cond) + _expr_size(expr.then) + \
            _expr_size(expr.otherwise)
    return 1


def _has_side_effects(expr: ast.Expr) -> bool:
    if isinstance(expr, (ast.Assign, ast.IncDec, ast.Call)):
        return True
    if isinstance(expr, ast.Unary):
        return _has_side_effects(expr.operand)
    if isinstance(expr, ast.Binary):
        return _has_side_effects(expr.left) or _has_side_effects(expr.right)
    if isinstance(expr, ast.Index):
        return _has_side_effects(expr.base) or _has_side_effects(expr.index)
    if isinstance(expr, ast.FieldAccess):
        return _has_side_effects(expr.base)
    if isinstance(expr, ast.Conditional):
        return (_has_side_effects(expr.cond) or _has_side_effects(expr.then)
                or _has_side_effects(expr.otherwise))
    return False


def _count_uses(expr: ast.Expr, name: str) -> int:
    if isinstance(expr, ast.Name):
        return 1 if expr.ident == name else 0
    if isinstance(expr, ast.Unary):
        return _count_uses(expr.operand, name)
    if isinstance(expr, ast.Binary):
        return _count_uses(expr.left, name) + _count_uses(expr.right, name)
    if isinstance(expr, ast.Assign):
        return _count_uses(expr.target, name) + _count_uses(expr.value, name)
    if isinstance(expr, ast.Call):
        return sum(_count_uses(a, name) for a in expr.args)
    if isinstance(expr, ast.Index):
        return _count_uses(expr.base, name) + _count_uses(expr.index, name)
    if isinstance(expr, ast.FieldAccess):
        return _count_uses(expr.base, name)
    if isinstance(expr, ast.IncDec):
        return _count_uses(expr.target, name)
    if isinstance(expr, ast.Conditional):
        return (_count_uses(expr.cond, name) + _count_uses(expr.then, name)
                + _count_uses(expr.otherwise, name))
    return 0


def _substitute(expr: ast.Expr, bindings: Dict[str, ast.Expr]) -> ast.Expr:
    """Copy ``expr`` replacing parameter names with argument expressions."""
    if isinstance(expr, ast.Number):
        return ast.Number(expr.value)
    if isinstance(expr, ast.Name):
        if expr.ident in bindings:
            return _substitute(bindings[expr.ident], {})
        return ast.Name(expr.ident)
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _substitute(expr.operand, bindings))
    if isinstance(expr, ast.Binary):
        return ast.Binary(expr.op, _substitute(expr.left, bindings),
                          _substitute(expr.right, bindings))
    if isinstance(expr, ast.Assign):
        return ast.Assign(_substitute(expr.target, bindings),
                          _substitute(expr.value, bindings))
    if isinstance(expr, ast.Call):
        return ast.Call(expr.callee,
                        [_substitute(a, bindings) for a in expr.args])
    if isinstance(expr, ast.Index):
        return ast.Index(_substitute(expr.base, bindings),
                         _substitute(expr.index, bindings))
    if isinstance(expr, ast.FieldAccess):
        return ast.FieldAccess(_substitute(expr.base, bindings),
                               expr.fieldname, expr.arrow)
    if isinstance(expr, ast.IncDec):
        return ast.IncDec(_substitute(expr.target, bindings), expr.delta,
                          expr.is_prefix)
    if isinstance(expr, ast.SizeOf):
        return ast.SizeOf(expr.measured)
    if isinstance(expr, ast.Conditional):
        return ast.Conditional(_substitute(expr.cond, bindings),
                               _substitute(expr.then, bindings),
                               _substitute(expr.otherwise, bindings))
    raise TypeError("cannot substitute into %r" % expr)


@dataclass
class _Candidate:
    fn: ast.FunctionDef
    body_expr: ast.Expr


def _single_return_expr(fn: ast.FunctionDef) -> Optional[ast.Expr]:
    if fn.body is None:
        return None
    statements = [s for s in fn.body.statements
                  if not (isinstance(s, ast.Block) and not s.statements)]
    if len(statements) != 1 or not isinstance(statements[0], ast.Return):
        return None
    return statements[0].value


def _calls_function(expr: ast.Expr, name: str) -> bool:
    if isinstance(expr, ast.Call):
        if expr.callee == name:
            return True
        return any(_calls_function(a, name) for a in expr.args)
    if isinstance(expr, ast.Unary):
        return _calls_function(expr.operand, name)
    if isinstance(expr, ast.Binary):
        return (_calls_function(expr.left, name)
                or _calls_function(expr.right, name))
    if isinstance(expr, ast.Assign):
        return (_calls_function(expr.target, name)
                or _calls_function(expr.value, name))
    if isinstance(expr, ast.Index):
        return (_calls_function(expr.base, name)
                or _calls_function(expr.index, name))
    if isinstance(expr, ast.FieldAccess):
        return _calls_function(expr.base, name)
    if isinstance(expr, ast.IncDec):
        return _calls_function(expr.target, name)
    if isinstance(expr, ast.Conditional):
        return (_calls_function(expr.cond, name)
                or _calls_function(expr.then, name)
                or _calls_function(expr.otherwise, name))
    return False


def _is_candidate(fn: ast.FunctionDef, opt_level: int) -> Optional[_Candidate]:
    expr = _single_return_expr(fn)
    if expr is None:
        return None
    if _count_uses(expr, fn.name) or _calls_function(expr, fn.name):
        return None  # recursive
    budget = INLINE_KEYWORD_NODES if fn.is_inline else SMALL_BODY_NODES
    if opt_level < 2 and not fn.is_inline:
        return None
    if opt_level < 1:
        return None
    if _expr_size(expr) > budget:
        return None
    return _Candidate(fn=fn, body_expr=expr)


class _CallInliner:
    """Rewrites the Call nodes of one caller function."""

    def __init__(self, caller: str, candidates: Dict[str, _Candidate],
                 report: InlineReport):
        self._caller = caller
        self._candidates = candidates
        self._report = report
        self.changed = False

    def rewrite_expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Unary):
            expr.operand = self.rewrite_expr(expr.operand)
            return expr
        if isinstance(expr, ast.Binary):
            expr.left = self.rewrite_expr(expr.left)
            expr.right = self.rewrite_expr(expr.right)
            return expr
        if isinstance(expr, ast.Assign):
            expr.target = self.rewrite_expr(expr.target)
            expr.value = self.rewrite_expr(expr.value)
            return expr
        if isinstance(expr, ast.Index):
            expr.base = self.rewrite_expr(expr.base)
            expr.index = self.rewrite_expr(expr.index)
            return expr
        if isinstance(expr, ast.FieldAccess):
            expr.base = self.rewrite_expr(expr.base)
            return expr
        if isinstance(expr, ast.IncDec):
            expr.target = self.rewrite_expr(expr.target)
            return expr
        if isinstance(expr, ast.Conditional):
            expr.cond = self.rewrite_expr(expr.cond)
            expr.then = self.rewrite_expr(expr.then)
            expr.otherwise = self.rewrite_expr(expr.otherwise)
            return expr
        if isinstance(expr, ast.Call):
            expr.args = [self.rewrite_expr(a) for a in expr.args]
            return self._maybe_inline(expr)
        return expr

    def _maybe_inline(self, call: ast.Call) -> ast.Expr:
        candidate = self._candidates.get(call.callee)
        if candidate is None or len(call.args) != len(candidate.fn.params):
            return call
        bindings: Dict[str, ast.Expr] = {}
        for param, arg in zip(candidate.fn.params, call.args):
            uses = _count_uses(candidate.body_expr, param.name)
            if uses != 1 and _has_side_effects(arg):
                return call  # substitution would change semantics
            bindings[param.name] = arg
        self._report.record(call.callee, self._caller)
        self.changed = True
        return _substitute(candidate.body_expr, bindings)

    def rewrite_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self.rewrite_stmt(stmt)

    def rewrite_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.rewrite_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self.rewrite_expr(stmt.expr)
        elif isinstance(stmt, ast.LocalDecl):
            if stmt.init is not None:
                stmt.init = self.rewrite_expr(stmt.init)
        elif isinstance(stmt, ast.If):
            stmt.cond = self.rewrite_expr(stmt.cond)
            self.rewrite_block(stmt.then)
            if stmt.otherwise:
                self.rewrite_block(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            stmt.cond = self.rewrite_expr(stmt.cond)
            if stmt.step is not None:
                stmt.step = self.rewrite_expr(stmt.step)
            self.rewrite_block(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            stmt.cond = self.rewrite_expr(stmt.cond)
            self.rewrite_block(stmt.body)
        elif isinstance(stmt, ast.Switch):
            stmt.selector = self.rewrite_expr(stmt.selector)
            for case in stmt.cases:
                for inner in case.body:
                    self.rewrite_stmt(inner)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                stmt.value = self.rewrite_expr(stmt.value)


def inline_unit(unit: ast.Unit, opt_level: int = 2) -> InlineReport:
    """Inline eligible calls within ``unit`` in place; return the report."""
    report = InlineReport()
    if opt_level < 1:
        return report
    candidates = {}
    for fn in unit.functions():
        candidate = _is_candidate(fn, opt_level)
        if candidate is not None:
            candidates[fn.name] = candidate

    for _ in range(_MAX_ROUNDS):
        any_changed = False
        for fn in unit.functions():
            if fn.body is None:
                continue
            rewriter = _CallInliner(fn.name, {
                name: cand for name, cand in candidates.items()
                if name != fn.name
            }, report)
            rewriter.rewrite_block(fn.body)
            any_changed = any_changed or rewriter.changed
        if not any_changed:
            break
    return report

"""Content-addressed caches for parse and compile results.

The evaluation pushes the same sources through ``parse_unit`` and
``compile_source`` over and over: the run kernel of a version is built
for every boot, the base units are byte-identical across all fourteen
versions, ksplice-create's *pre* build recompiles unpatched units, and
the stress battery recompiles the same six user programs for every CVE.

Entries are keyed by content, not identity:

* parse cache — ``(unit path, sha256(source))`` → ``ast.Unit``
* compile cache — ``(unit path, sha256(source), CompilerOptions)`` →
  ``CompileResult``

so a patched unit *cannot* hit a stale entry: rewriting the source
changes the digest and therefore the key (this is the invalidation
story — there is nothing to invalidate explicitly, only entries that can
no longer be reached).  Options participate in the compile key because
flavor matters: a merged-section build and a function-sections build of
the same source are different objects.

Cached values are shared, never copied, which is safe because every
consumer treats them as immutable: the compiler deep-copies ASTs before
inlining mutates them, the linker writes relocations into its own image
buffer, and extraction copies sections (see ``core/extract.py``).

Caches are bounded (LRU eviction) and expose :class:`CacheStats`
counters; ``clear_caches()`` resets everything for test isolation.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.lang import ast, parse_unit


@dataclass
class CacheStats:
    """Hit/miss/volume counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: approximate payload volume (source bytes the cache saved reparsing
    #: or recompiling on hits / paid for on misses)
    bytes_cached: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.bytes_cached += other.bytes_cached


class ContentCache:
    """A bounded mapping with LRU eviction and stats.

    ``max_entries`` bounds memory (the seed's ``_BUILD_CACHE`` module
    global had no size control at all); the default is generous enough
    that a full corpus evaluation never evicts.
    """

    def __init__(self, name: str, max_entries: int = 4096):
        self.name = name
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.enabled = True

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, size: int = 0) -> Optional[Any]:
        if not self.enabled:
            self.stats.misses += 1
            return None
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self.stats.bytes_cached += size
        return value

    def put(self, key: Hashable, value: Any, size: int = 0) -> None:
        if not self.enabled:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        self.stats.bytes_cached += size
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self, reset_stats: bool = True) -> None:
        self._entries.clear()
        if reset_stats:
            self.stats = CacheStats()

    def reset_stats(self) -> None:
        """Zero the counters without dropping entries (for measuring the
        hit rate of one specific pass over warm caches)."""
        self.stats = CacheStats()


#: every cache registered here is covered by clear_caches()/cache_stats()
_REGISTRY: List[ContentCache] = []


def register_cache(cache: ContentCache) -> ContentCache:
    _REGISTRY.append(cache)
    return cache


PARSE_CACHE = register_cache(ContentCache("parse"))
COMPILE_CACHE = register_cache(ContentCache("compile"))


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def parse_unit_cached(source: str, unit_name: str = "<unit>") -> ast.Unit:
    """Content-addressed ``parse_unit``.

    The returned Unit is shared — callers that mutate must deep-copy
    first (``compile_unit`` already does).
    """
    key = (unit_name, source_digest(source))
    cached = PARSE_CACHE.get(key, size=len(source))
    if cached is None:
        cached = parse_unit(source, unit_name)
        PARSE_CACHE.put(key, cached, size=len(source))
    return cached


def set_caches_enabled(enabled: bool) -> None:
    """Benchmark/bisection aid: bypass every registered cache."""
    for cache in _REGISTRY:
        cache.enabled = enabled


def clear_caches() -> None:
    """Drop every registered cache's entries and counters."""
    for cache in _REGISTRY:
        cache.clear()


def reset_cache_stats() -> None:
    for cache in _REGISTRY:
        cache.reset_stats()


def cache_stats() -> Dict[str, CacheStats]:
    """Current counters, keyed by cache name."""
    return {cache.name: cache.stats for cache in _REGISTRY}


def combined_stats() -> CacheStats:
    total = CacheStats()
    for cache in _REGISTRY:
        total.merge(cache.stats)
    return total


def compile_cache_key(source: str, unit_name: str,
                      options: Any) -> Tuple[str, str, Any]:
    """The content-addressed key for one compile: ``CompilerOptions`` is
    a frozen dataclass, so it hashes by value, not identity."""
    return (unit_name, source_digest(source), options)

"""Content-addressed caches for parse and compile results.

The evaluation pushes the same sources through ``parse_unit`` and
``compile_source`` over and over: the run kernel of a version is built
for every boot, the base units are byte-identical across all fourteen
versions, ksplice-create's *pre* build recompiles unpatched units, and
the stress battery recompiles the same six user programs for every CVE.

Entries are keyed by content, not identity:

* parse cache — ``(unit path, sha256(source))`` → ``ast.Unit``
* compile cache — ``(unit path, sha256(source), CompilerOptions)`` →
  ``CompileResult``

so a patched unit *cannot* hit a stale entry: rewriting the source
changes the digest and therefore the key (this is the invalidation
story — there is nothing to invalidate explicitly, only entries that can
no longer be reached).  Options participate in the compile key because
flavor matters: a merged-section build and a function-sections build of
the same source are different objects.

Cached values are shared, never copied, which is safe because every
consumer treats them as immutable: the compiler deep-copies ASTs before
inlining mutates them, the linker writes relocations into its own image
buffer, and extraction copies sections (see ``core/extract.py``).

Storage sits behind :class:`CacheBackend` tiers.  Every
:class:`ContentCache` always has a bounded in-memory LRU tier
(:class:`MemoryBackend`); :func:`enable_disk_cache` attaches a second,
:class:`DiskBackend` tier that spills pickled values under a shared
directory — because the keys are already process-stable, a *cold
process* starts warm from disk.  Disk hits are promoted back into
memory; both tiers are bounded; ``clear_caches()`` wipes entries in
every tier (including the files on disk) plus the counters.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.lang import ast, parse_unit

_MISS = object()


@dataclass
class CacheStats:
    """Hit/miss/volume counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: approximate payload volume (source bytes the cache saved reparsing
    #: or recompiling on hits / paid for on misses)
    bytes_cached: int = 0
    #: subset of ``hits`` served by the disk tier (cold-process warmth)
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.bytes_cached += other.bytes_cached
        self.disk_hits += other.disk_hits


class CacheBackend:
    """One storage tier: get/put/clear with LRU-bounded capacity.

    ``get`` returns the sentinel-free pair ``(found, value)``; ``put``
    returns how many entries the insert evicted (for stats).
    """

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        raise NotImplementedError

    def put(self, key: Hashable, value: Any) -> int:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class MemoryBackend(CacheBackend):
    """In-process tier: an OrderedDict with LRU eviction."""

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            return False, None
        self._entries.move_to_end(key)
        return True, value

    def put(self, key: Hashable, value: Any) -> int:
        self._entries[key] = value
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        return evicted

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class DiskBackend(CacheBackend):
    """On-disk tier: one pickle file per entry, LRU-bounded by mtime.

    Keys are process-stable tuples of strings and frozen dataclasses, so
    ``sha256(repr(key))`` is a faithful content address across
    processes.  Writes are atomic (temp file + rename) so concurrent
    evaluation workers can share a directory; reads treat any missing,
    corrupt, or unpicklable entry as a miss (and drop the file).
    """

    def __init__(self, directory: str, max_entries: int = 512):
        self.directory = directory
        self.max_entries = max_entries
        #: values that could not be pickled and were skipped
        self.put_failures = 0

    def _path(self, key: Hashable) -> str:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return os.path.join(self.directory, digest + ".pkl")

    def _files(self) -> List[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [os.path.join(self.directory, n) for n in names
                if n.endswith(".pkl")]

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            return False, None
        except Exception:
            try:  # corrupt or unreadable: drop it, report a miss
                os.unlink(path)
            except OSError:
                pass
            return False, None
        try:  # refresh LRU position
            os.utime(path, None)
        except OSError:
            pass
        return True, value

    def put(self, key: Hashable, value: Any) -> int:
        try:
            payload = pickle.dumps(value)
        except Exception:
            self.put_failures += 1
            return 0
        path = self._path(key)
        tmp = path + ".%d.tmp" % os.getpid()
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            self.put_failures += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return 0
        return self._evict()

    def _evict(self) -> int:
        files = self._files()
        if len(files) <= self.max_entries:
            return 0
        def mtime(path: str) -> float:
            try:
                return os.path.getmtime(path)
            except OSError:
                return 0.0
        files.sort(key=mtime)
        evicted = 0
        for path in files[:len(files) - self.max_entries]:
            try:
                os.unlink(path)
                evicted += 1
            except OSError:
                pass
        return evicted

    def clear(self) -> None:
        for path in self._files():
            try:
                os.unlink(path)
            except OSError:
                pass

    def __len__(self) -> int:
        return len(self._files())


class ContentCache:
    """A bounded content-addressed cache over one or two tiers.

    Lookups try memory first, then the disk tier when one is attached;
    a disk hit is promoted into memory so the process pays the pickle
    cost once.  Writes go to every tier.  ``len()`` reports the memory
    tier (the bound the process actually holds).
    """

    def __init__(self, name: str, max_entries: int = 4096):
        self.name = name
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.enabled = True
        self._memory = MemoryBackend(max_entries)
        self._disk: Optional[DiskBackend] = None

    @property
    def disk(self) -> Optional[DiskBackend]:
        return self._disk

    def attach_disk(self, backend: Optional[DiskBackend]) -> None:
        self._disk = backend

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, key: Hashable, size: int = 0) -> Optional[Any]:
        if not self.enabled:
            self.stats.misses += 1
            return None
        found, value = self._memory.get(key)
        if found:
            self.stats.hits += 1
            self.stats.bytes_cached += size
            return value
        if self._disk is not None:
            found, value = self._disk.get(key)
            if found:
                self.stats.evictions += self._memory.put(key, value)
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self.stats.bytes_cached += size
                return value
        self.stats.misses += 1
        return None

    def put(self, key: Hashable, value: Any, size: int = 0) -> None:
        if not self.enabled:
            return
        self.stats.bytes_cached += size
        self.stats.evictions += self._memory.put(key, value)
        if self._disk is not None:
            self.stats.evictions += self._disk.put(key, value)

    def drop_memory(self) -> None:
        """Empty the memory tier only (simulates a cold process whose
        disk tier survived)."""
        self._memory.clear()

    def clear(self, reset_stats: bool = True) -> None:
        self._memory.clear()
        if self._disk is not None:
            self._disk.clear()
        if reset_stats:
            self.stats = CacheStats()

    def reset_stats(self) -> None:
        """Zero the counters without dropping entries (for measuring the
        hit rate of one specific pass over warm caches)."""
        self.stats = CacheStats()


#: every cache registered here is covered by clear_caches()/cache_stats()
_REGISTRY: List[ContentCache] = []

#: directory the disk tier spills under, when enabled
_DISK_ROOT: Optional[str] = None
_DISK_MAX_ENTRIES = 512


def register_cache(cache: ContentCache) -> ContentCache:
    _REGISTRY.append(cache)
    if _DISK_ROOT is not None:
        cache.attach_disk(DiskBackend(
            os.path.join(_DISK_ROOT, cache.name),
            max_entries=_DISK_MAX_ENTRIES))
    return cache


def enable_disk_cache(root: Optional[str] = None,
                      max_entries: int = 512) -> str:
    """Attach a disk tier to every registered cache.

    ``root`` defaults to the shared cache root (``REPRO_CACHE_DIR`` or
    ``~/.cache/repro-ksplice``).  Each cache gets its own subdirectory;
    each directory is bounded to ``max_entries`` files.  Returns the
    root actually used.
    """
    global _DISK_ROOT, _DISK_MAX_ENTRIES
    if root is None:
        from repro.pipeline.store import cache_root

        root = os.path.join(cache_root(), "objects")
    _DISK_ROOT = root
    _DISK_MAX_ENTRIES = max_entries
    for cache in _REGISTRY:
        cache.attach_disk(DiskBackend(os.path.join(root, cache.name),
                                      max_entries=max_entries))
    return root


def disable_disk_cache() -> None:
    """Detach the disk tier everywhere (files are left on disk)."""
    global _DISK_ROOT
    _DISK_ROOT = None
    for cache in _REGISTRY:
        cache.attach_disk(None)


def active_disk_root() -> Optional[str]:
    """The enabled disk-cache root, or None — forwarded to evaluation
    workers so child processes share the same tier."""
    return _DISK_ROOT


def disk_cache_config() -> Optional[Tuple[str, int]]:
    """``(root, max_entries)`` of the enabled disk tier, or None.

    This is the warm-start handshake payload: a coordinator sends it to
    remote workers so they attach the same shared tier (same root, same
    bound) before evaluating anything.
    """
    if _DISK_ROOT is None:
        return None
    return _DISK_ROOT, _DISK_MAX_ENTRIES


def apply_disk_cache_config(config: Optional[Tuple[str, int]]) -> None:
    """Worker-side half of :func:`disk_cache_config`."""
    if config is None:
        disable_disk_cache()
    else:
        root, max_entries = config
        enable_disk_cache(root, max_entries=max_entries)


def snapshot_stats() -> Dict[str, Tuple[int, ...]]:
    """Counter tuples for every registered cache, for later deltas."""
    return {cache.name: (cache.stats.hits, cache.stats.misses,
                         cache.stats.evictions, cache.stats.bytes_cached,
                         cache.stats.disk_hits)
            for cache in _REGISTRY}


def stats_delta(before: Dict[str, Tuple[int, ...]],
                ) -> Dict[str, CacheStats]:
    """What each cache's counters gained since ``before``.

    This is the unit of cache accounting that crosses process and host
    boundaries: a worker snapshots before an item, computes the delta
    after, and the coordinator merges deltas with
    :func:`merge_stats_into` — summing per cache name, so two workers
    that each missed the *same* content key contribute two misses (each
    really did the work).
    """
    delta: Dict[str, CacheStats] = {}
    for name, stats in cache_stats().items():
        h0, m0, e0, b0, d0 = before.get(name, (0, 0, 0, 0, 0))
        delta[name] = CacheStats(hits=stats.hits - h0,
                                 misses=stats.misses - m0,
                                 evictions=stats.evictions - e0,
                                 bytes_cached=stats.bytes_cached - b0,
                                 disk_hits=stats.disk_hits - d0)
    return delta


def merge_stats_into(target: Dict[str, CacheStats],
                     delta: Dict[str, CacheStats]) -> None:
    """Fold one worker's per-cache delta into an aggregate mapping."""
    for name, stats in delta.items():
        target.setdefault(name, CacheStats()).merge(stats)


PARSE_CACHE = register_cache(ContentCache("parse"))
COMPILE_CACHE = register_cache(ContentCache("compile"))


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def parse_unit_cached(source: str, unit_name: str = "<unit>") -> ast.Unit:
    """Content-addressed ``parse_unit``.

    The returned Unit is shared — callers that mutate must deep-copy
    first (``compile_unit`` already does).
    """
    key = (unit_name, source_digest(source))
    cached = PARSE_CACHE.get(key, size=len(source))
    if cached is None:
        cached = parse_unit(source, unit_name)
        PARSE_CACHE.put(key, cached, size=len(source))
    return cached


def set_caches_enabled(enabled: bool) -> None:
    """Benchmark/bisection aid: bypass every registered cache."""
    for cache in _REGISTRY:
        cache.enabled = enabled


def clear_caches() -> None:
    """Drop every registered cache's entries (all tiers, including the
    files of the disk tier) and counters."""
    for cache in _REGISTRY:
        cache.clear()


def drop_memory_tiers() -> None:
    """Empty every cache's memory tier, keeping the disk tier and the
    counters — the "new cold process, warm disk" simulation."""
    for cache in _REGISTRY:
        cache.drop_memory()


def reset_cache_stats() -> None:
    for cache in _REGISTRY:
        cache.reset_stats()


def cache_stats() -> Dict[str, CacheStats]:
    """Current counters, keyed by cache name."""
    return {cache.name: cache.stats for cache in _REGISTRY}


def combined_stats() -> CacheStats:
    total = CacheStats()
    for cache in _REGISTRY:
        total.merge(cache.stats)
    return total


def compile_cache_key(source: str, unit_name: str,
                      options: Any) -> Tuple[str, str, Any]:
    """The content-addressed key for one compile: ``CompilerOptions`` is
    a frozen dataclass, so it hashes by value, not identity."""
    return (unit_name, source_digest(source), options)

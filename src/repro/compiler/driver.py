"""The compiler driver ("kcc"): source text in, object file out.

Handles both MiniC (``.c``) and k86 assembly (``.s``) units, applying the
layout mode the options select.  Assembly units keep their hand-written
section structure in the merged build; in the function-sections build
their ``.text`` is split at global labels exactly the way gcc splits C
functions, so ksplice-create sees per-function sections for assembly too
(the paper's ia32entry.S case).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.arch.assembler import Item, Label, assemble, parse_asm
from repro.errors import CompileError
from repro.lang import ast, parse_unit
from repro.objfile import (
    ObjectFile,
    Relocation,
    RelocationType,
    Section,
    Symbol,
    SymbolBinding,
    SymbolKind,
)
from repro.objfile.section import kind_for_name
from repro.compiler.codegen import FunctionCode, UnitContext, compile_function
from repro.compiler.inliner import InlineReport, inline_unit
from repro.compiler.layout import (
    collect_data_items,
    layout_merged,
    layout_split,
)

_RELOC_TYPE = {"abs32": RelocationType.ABS32, "pc32": RelocationType.PC32}


@dataclass(frozen=True)
class CompilerOptions:
    """Build flags.

    ``opt_level`` 0/1/2 controls inlining (see :mod:`repro.compiler.
    inliner`).  ``function_sections``/``data_sections`` mirror gcc's
    ``-ffunction-sections``/``-fdata-sections``.  ``compiler_version``
    feeds the "same compiler version" advice in §4.3: builds with
    different versions produce (slightly) different code.
    """

    opt_level: int = 2
    function_sections: bool = False
    data_sections: bool = False
    align_functions: int = 16
    compiler_version: str = "kcc-1.0"

    def pre_post_flavor(self) -> "CompilerOptions":
        """The flags ksplice-create builds with."""
        return replace(self, function_sections=True, data_sections=True)


@dataclass
class CompileResult:
    objfile: ObjectFile
    inline_report: InlineReport


def compile_unit(unit: ast.Unit, options: CompilerOptions) -> CompileResult:
    """Compile a parsed MiniC unit into an object file."""
    working = copy.deepcopy(unit)
    report = inline_unit(working, opt_level=options.opt_level)
    ctx = UnitContext.for_unit(working,
                               align_loops=options.opt_level >= 2)

    functions: List[FunctionCode] = []
    static_locals = []
    for fn in working.functions():
        code = compile_function(fn, ctx)
        code = _apply_version_quirks(code, options)
        functions.append(code)
        static_locals.extend(code.static_locals)

    data_items = collect_data_items(working, static_locals)
    if options.function_sections:
        obj = layout_split(working, functions, data_items,
                           options.align_functions, working.name,
                           data_sections=options.data_sections)
    else:
        obj = layout_merged(working, functions, data_items,
                            options.align_functions, working.name)
    return CompileResult(objfile=obj, inline_report=report)


def _apply_version_quirks(code: FunctionCode,
                          options: CompilerOptions) -> FunctionCode:
    """Model compiler-version skew (§4.3).

    A different ``compiler_version`` emits a (harmless but real)
    register self-move at every function entry, so run-pre matching of a
    kernel built by one version against pre code built by another sees
    genuine code differences — exactly the hazard the paper advises
    avoiding by using the same compiler version.  (A nop would not do:
    run-pre matching correctly skips nop padding.)
    """
    if options.compiler_version == "kcc-1.0":
        return code
    from repro.arch.assembler import Insn

    items: List[Item] = []
    for item in code.items:
        items.append(item)
        if isinstance(item, Label) and item.name == code.name:
            items.append(Insn("movr", (4, 4)))
    return FunctionCode(name=code.name, items=items,
                        static_locals=code.static_locals)


def compile_asm(source: str, unit_name: str,
                options: CompilerOptions) -> CompileResult:
    """Assemble a ``.s`` unit into an object file."""
    parsed = parse_asm(source)
    obj = ObjectFile(name=unit_name)
    globals_declared = set(parsed.global_symbols)

    for section_name, items in parsed.sections.items():
        if (options.function_sections and section_name == ".text"
                and globals_declared):
            _assemble_split_text(obj, items, globals_declared)
        else:
            _assemble_whole_section(obj, section_name, items,
                                    globals_declared)
    obj.ensure_undefined(obj.referenced_symbol_names())
    obj.validate()
    return CompileResult(objfile=obj, inline_report=InlineReport())


def _is_symbol_label(name: str) -> bool:
    return not name.startswith(".L")


def _assemble_whole_section(obj: ObjectFile, section_name: str,
                            items: List[Item], globals_declared: set) -> None:
    result = assemble(items)
    kind = kind_for_name(section_name)
    section = Section(name=section_name, kind=kind, data=result.code,
                      alignment=16 if kind.is_code else 4)
    for request in result.relocations:
        section.relocations.append(Relocation(
            offset=request.offset, symbol=request.symbol,
            type=_RELOC_TYPE[request.kind], addend=request.addend))
    obj.add_section(section)
    symbol_labels = [(name, offset) for name, offset in result.labels.items()
                     if _is_symbol_label(name)]
    symbol_labels.sort(key=lambda pair: pair[1])
    for index, (name, offset) in enumerate(symbol_labels):
        end = (symbol_labels[index + 1][1] if index + 1 < len(symbol_labels)
               else section.size)
        binding = (SymbolBinding.GLOBAL if name in globals_declared
                   else SymbolBinding.LOCAL)
        sym_kind = SymbolKind.FUNC if kind.is_code else SymbolKind.OBJECT
        obj.add_symbol(Symbol(name=name, binding=binding, kind=sym_kind,
                              section=section_name, value=offset,
                              size=end - offset))


def _assemble_split_text(obj: ObjectFile, items: List[Item],
                         globals_declared: set) -> None:
    """Split a .text item stream at global labels into .text.<fn> sections."""
    groups: List[List[Item]] = []
    current: Optional[List[Item]] = None
    names: List[str] = []
    for item in items:
        if isinstance(item, Label) and item.name in globals_declared:
            current = [item]
            groups.append(current)
            names.append(item.name)
            continue
        if current is None:
            raise CompileError(
                "assembly .text must start with a global label to be "
                "split into function sections")
        current.append(item)
    for name, group in zip(names, groups):
        result = assemble(group)
        section_name = ".text.%s" % name
        section = Section(name=section_name, kind=kind_for_name(section_name),
                          data=result.code, alignment=16)
        for request in result.relocations:
            section.relocations.append(Relocation(
                offset=request.offset, symbol=request.symbol,
                type=_RELOC_TYPE[request.kind], addend=request.addend))
        obj.add_section(section)
        obj.add_symbol(Symbol(name=name, binding=SymbolBinding.GLOBAL,
                              kind=SymbolKind.FUNC, section=section_name,
                              value=result.labels[name], size=section.size))


def compile_source(source: str, unit_name: str,
                   options: Optional[CompilerOptions] = None) -> CompileResult:
    """Compile one source file (``.c`` MiniC or ``.s`` assembly)."""
    options = options or CompilerOptions()
    if unit_name.endswith(".s"):
        return compile_asm(source, unit_name, options)
    unit = parse_unit(source, unit_name)
    return compile_unit(unit, options)


def compile_source_cached(source: str, unit_name: str,
                          options: Optional[CompilerOptions] = None,
                          ) -> CompileResult:
    """Content-addressed :func:`compile_source`.

    Keyed by ``(unit path, sha256(source), options)``, so a patched unit
    can never hit the pre-patch entry.  The returned CompileResult is
    shared: every consumer (linker, extraction, objdiff) treats object
    files as immutable.  On a miss the parse itself goes through the
    parse cache, so two option flavors of one source (merged run-kernel
    build vs function-sections pre/post build) share one AST.
    """
    from repro.compiler.cache import (
        COMPILE_CACHE,
        compile_cache_key,
        parse_unit_cached,
    )

    options = options or CompilerOptions()
    key = compile_cache_key(source, unit_name, options)
    cached = COMPILE_CACHE.get(key, size=len(source))
    if cached is None:
        if unit_name.endswith(".s"):
            cached = compile_asm(source, unit_name, options)
        else:
            cached = compile_unit(parse_unit_cached(source, unit_name),
                                  options)
        COMPILE_CACHE.put(key, cached, size=len(source))
    return cached

"""Code generation: MiniC AST -> assembler items.

The generated code follows a simple two-register evaluation scheme:
expressions evaluate into r0, binary operations stash the left operand on
the machine stack, and all locals live in a frame addressed off ``fp``.

Calling convention (matches the CPU's CALL/RET semantics):

* caller pushes arguments right-to-left, executes ``call``, then pops the
  arguments with ``addi sp, 4*nargs``;
* ``call`` pushes the return address; the callee's prologue pushes the
  caller's ``fp`` and carves the frame, so inside a function
  ``fp+0`` = saved fp, ``fp+4`` = return address, ``fp+8+4i`` = argument i,
  ``fp-4-...`` = locals;
* the result travels in r0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.arch.assembler import Align, Insn, Item, Label, LabelRef, SymRef

#: loop-top alignment applied at opt_level >= 2 (gcc's .p2align on jump
#: targets); padding is executable nop sequences
LOOP_ALIGNMENT = 8
from repro.arch.isa import REG_FP, REG_SP
from repro.errors import CompileError
from repro.lang import ast
from repro.lang.types import (
    INT,
    ArrayType,
    PointerType,
    StructType,
    Type,
    TypeTable,
    element_type,
)

_R0, _R1, _R2 = 0, 1, 2

_CMP_JUMPS = {
    "==": "jz",
    "!=": "jnz",
    "<": "jl",
    ">": "jg",
    "<=": "jle",
    ">=": "jge",
}

_ARITH_OPS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "shr",
}


@dataclass
class UnitContext:
    """Name environment shared by every function in a compilation unit."""

    unit_name: str
    types: TypeTable
    global_types: Dict[str, Type] = field(default_factory=dict)
    function_names: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: align loop heads with executable nop padding (opt_level >= 2)
    align_loops: bool = False

    @classmethod
    def for_unit(cls, unit: ast.Unit,
                 align_loops: bool = False) -> "UnitContext":
        ctx = cls(unit_name=unit.name, types=unit.types or TypeTable(),
                  align_loops=align_loops)
        for gvar in unit.global_vars():
            ctx.global_types[gvar.name] = gvar.typ
        for decl in unit.decls:
            if isinstance(decl, ast.FunctionDef):
                ctx.function_names[decl.name] = decl
        return ctx


@dataclass
class StaticLocal:
    """A ``static`` local promoted to unit-level data with a mangled name."""

    symbol: str          # e.g. "ca_get_slot_info.debug"
    typ: Type
    init: int


@dataclass
class FunctionCode:
    """Result of compiling one function."""

    name: str
    items: List[Item]
    static_locals: List[StaticLocal] = field(default_factory=list)


class _Scope:
    """Local variable environment for one function body."""

    def __init__(self) -> None:
        self.offsets: Dict[str, int] = {}   # name -> fp-relative offset
        self.types: Dict[str, Type] = {}
        self.statics: Dict[str, StaticLocal] = {}
        self.frame_size = 0

    def declare_local(self, name: str, typ: Type) -> int:
        self.frame_size += max(4, typ.size)
        offset = -self.frame_size
        self.offsets[name] = offset
        self.types[name] = typ
        return offset

    def declare_param(self, index: int, name: str, typ: Type) -> None:
        self.offsets[name] = 8 + 4 * index
        self.types[name] = typ


class FunctionCompiler:
    """Compiles one :class:`ast.FunctionDef` into assembler items."""

    def __init__(self, fn: ast.FunctionDef, ctx: UnitContext):
        self._fn = fn
        self._ctx = ctx
        self._scope = _Scope()
        self._items: List[Item] = []
        self._label_counter = 0
        self._loop_stack: List[Tuple[str, str]] = []  # (continue, break)

    # -- helpers -----------------------------------------------------------

    def _label(self, hint: str) -> str:
        self._label_counter += 1
        return ".L%s_%s%d" % (self._fn.name, hint, self._label_counter)

    def _emit(self, mnemonic: str, *operands: object) -> None:
        self._items.append(Insn(mnemonic, tuple(operands)))

    def _emit_label(self, name: str) -> None:
        self._items.append(Label(name))

    def _error(self, message: str) -> CompileError:
        return CompileError("%s: in %s: %s"
                            % (self._ctx.unit_name, self._fn.name, message))

    # -- type queries --------------------------------------------------------

    def _type_of(self, expr: ast.Expr) -> Type:
        if isinstance(expr, (ast.Number, ast.SizeOf)):
            return INT
        if isinstance(expr, ast.Name):
            name = expr.ident
            if name in self._scope.types:
                return self._scope.types[name]
            if name in self._scope.statics:
                return self._scope.statics[name].typ
            if name in self._ctx.global_types:
                return self._ctx.global_types[name]
            if name in self._ctx.function_names:
                return PointerType(INT)
            raise self._error("unknown identifier %r" % name)
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                inner = self._type_of(expr.operand)
                pointee = element_type(inner)
                if pointee is None:
                    raise self._error("cannot dereference non-pointer")
                return pointee
            if expr.op == "&":
                return PointerType(self._type_of(expr.operand))
            return INT
        if isinstance(expr, ast.Binary):
            if expr.op in ("+", "-"):
                left = self._type_of(expr.left)
                if element_type(left) is not None:
                    return left if not isinstance(left, ArrayType) else \
                        PointerType(left.element)
                right = self._type_of(expr.right)
                if expr.op == "+" and element_type(right) is not None:
                    return right if not isinstance(right, ArrayType) else \
                        PointerType(right.element)
            return INT
        if isinstance(expr, ast.Index):
            base = self._type_of(expr.base)
            elem = element_type(base)
            if elem is None:
                raise self._error("indexing a non-array/pointer")
            return elem
        if isinstance(expr, ast.FieldAccess):
            return self._field_info(expr)[1]
        if isinstance(expr, ast.Assign):
            return self._type_of(expr.target)
        if isinstance(expr, ast.IncDec):
            return self._type_of(expr.target)
        if isinstance(expr, ast.Call):
            return INT
        if isinstance(expr, ast.Conditional):
            return self._type_of(expr.then)
        return INT

    def _field_info(self, expr: ast.FieldAccess) -> Tuple[int, Type]:
        base_type = self._type_of(expr.base)
        if expr.arrow:
            pointee = element_type(base_type)
            if not isinstance(pointee, StructType):
                raise self._error("-> on non-struct-pointer")
            struct = pointee
        else:
            if not isinstance(base_type, StructType):
                raise self._error(". on non-struct")
            struct = base_type
        return struct.field_offset(expr.fieldname), struct.field_type(expr.fieldname)

    # -- entry point ---------------------------------------------------------

    def compile(self) -> FunctionCode:
        fn = self._fn
        if fn.body is None:
            raise self._error("cannot compile a prototype")
        for index, param in enumerate(fn.params):
            self._scope.declare_param(index, param.name, param.typ)

        self._collect_statics(fn.body)

        body_items = self._items = []
        self._compile_block(fn.body)

        items: List[Item] = [Label(fn.name)]
        items.append(Insn("push", (REG_FP,)))
        items.append(Insn("movr", (REG_FP, REG_SP)))
        if self._scope.frame_size:
            items.append(Insn("addi", (REG_SP, -self._scope.frame_size)))
        items.extend(body_items)
        items.append(Label(self._epilogue_label()))
        items.append(Insn("movr", (REG_SP, REG_FP)))
        items.append(Insn("pop", (REG_FP,)))
        items.append(Insn("ret", ()))
        return FunctionCode(name=fn.name, items=items,
                            static_locals=list(self._scope.statics.values()))

    def _epilogue_label(self) -> str:
        return ".L%s_epilogue" % self._fn.name

    def _collect_statics(self, block: ast.Block) -> None:
        """Find static locals anywhere in the body and mangle their names."""
        for stmt in block.statements:
            if isinstance(stmt, ast.LocalDecl) and stmt.is_static:
                symbol = "%s.%s" % (self._fn.name, stmt.name)
                self._scope.statics[stmt.name] = StaticLocal(
                    symbol=symbol, typ=stmt.typ, init=stmt.static_init)
            elif isinstance(stmt, ast.Block):
                self._collect_statics(stmt)
            elif isinstance(stmt, ast.If):
                self._collect_statics(stmt.then)
                if stmt.otherwise:
                    self._collect_statics(stmt.otherwise)
            elif isinstance(stmt, ast.While):
                self._collect_statics(stmt.body)
            elif isinstance(stmt, ast.DoWhile):
                self._collect_statics(stmt.body)
            elif isinstance(stmt, ast.Switch):
                for case in stmt.cases:
                    self._collect_statics(ast.Block(statements=case.body))

    # -- statements ------------------------------------------------------------

    def _compile_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._compile_stmt(stmt)

    def _compile_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._compile_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._compile_expr(stmt.expr)
        elif isinstance(stmt, ast.LocalDecl):
            self._compile_local_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._compile_expr(stmt.value)
            else:
                self._emit("movi", _R0, 0)
            self._emit("jmp", LabelRef(self._epilogue_label()))
        elif isinstance(stmt, ast.DoWhile):
            self._compile_do_while(stmt)
        elif isinstance(stmt, ast.Switch):
            self._compile_switch(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise self._error("break outside loop")
            self._emit("jmp", LabelRef(self._loop_stack[-1][1]))
        elif isinstance(stmt, ast.Continue):
            target = next((entry[0] for entry in reversed(self._loop_stack)
                           if entry[0] is not None), None)
            if target is None:
                raise self._error("continue outside loop")
            self._emit("jmp", LabelRef(target))
        else:
            raise self._error("unsupported statement %r" % stmt)

    def _compile_local_decl(self, decl: ast.LocalDecl) -> None:
        if decl.is_static:
            return  # storage emitted at unit level; nothing to run
        offset = self._scope.declare_local(decl.name, decl.typ)
        if decl.init is not None:
            self._compile_expr(decl.init)
            self._emit("storer", REG_FP, offset, _R0)

    def _compile_if(self, stmt: ast.If) -> None:
        else_label = self._label("else")
        end_label = self._label("endif")
        self._compile_expr(stmt.cond)
        self._emit("cmpi", _R0, 0)
        self._emit("jz", LabelRef(else_label if stmt.otherwise else end_label))
        self._compile_block(stmt.then)
        if stmt.otherwise:
            self._emit("jmp", LabelRef(end_label))
            self._emit_label(else_label)
            self._compile_block(stmt.otherwise)
        self._emit_label(end_label)

    def _compile_while(self, stmt: ast.While) -> None:
        top = self._label("loop")
        end = self._label("endloop")
        step_label = self._label("step") if stmt.step is not None else top
        if self._ctx.align_loops:
            self._items.append(Align(LOOP_ALIGNMENT))
        self._emit_label(top)
        self._compile_expr(stmt.cond)
        self._emit("cmpi", _R0, 0)
        self._emit("jz", LabelRef(end))
        # continue jumps to the step (for-loops) or the condition.
        self._loop_stack.append((step_label, end))
        self._compile_block(stmt.body)
        self._loop_stack.pop()
        if stmt.step is not None:
            self._emit_label(step_label)
            self._compile_expr(stmt.step)
        self._emit("jmp", LabelRef(top))
        self._emit_label(end)

    def _compile_do_while(self, stmt: ast.DoWhile) -> None:
        top = self._label("dloop")
        test = self._label("dtest")
        end = self._label("dend")
        if self._ctx.align_loops:
            self._items.append(Align(LOOP_ALIGNMENT))
        self._emit_label(top)
        self._loop_stack.append((test, end))  # continue -> the test
        self._compile_block(stmt.body)
        self._loop_stack.pop()
        self._emit_label(test)
        self._compile_expr(stmt.cond)
        self._emit("cmpi", _R0, 0)
        self._emit("jnz", LabelRef(top))
        self._emit_label(end)

    def _compile_switch(self, stmt: ast.Switch) -> None:
        """C switch: compare-and-branch dispatch, fallthrough bodies.

        ``break`` exits the switch; ``continue`` still refers to the
        innermost enclosing *loop* (hence the ``None`` continue slot).
        """
        end = self._label("swend")
        case_labels = [self._label("case") for _ in stmt.cases]
        self._compile_expr(stmt.selector)
        default_label = end
        for case, label in zip(stmt.cases, case_labels):
            if case.value is None:
                default_label = label
                continue
            self._emit("cmpi", _R0, case.value & 0xFFFFFFFF)
            self._emit("jz", LabelRef(label))
        self._emit("jmp", LabelRef(default_label))
        self._loop_stack.append((None, end))
        for case, label in zip(stmt.cases, case_labels):
            self._emit_label(label)
            for inner in case.body:
                self._compile_stmt(inner)
            # no jump: C fallthrough into the next case
        self._loop_stack.pop()
        self._emit_label(end)

    # -- expressions -----------------------------------------------------------

    def _compile_expr(self, expr: ast.Expr) -> None:
        """Evaluate ``expr`` into r0."""
        if isinstance(expr, ast.Number):
            self._emit("movi", _R0, expr.value & 0xFFFFFFFF)
        elif isinstance(expr, ast.SizeOf):
            self._emit("movi", _R0, expr.measured.size)
        elif isinstance(expr, ast.Name):
            self._compile_name_value(expr)
        elif isinstance(expr, ast.Unary):
            self._compile_unary(expr)
        elif isinstance(expr, ast.Binary):
            self._compile_binary(expr)
        elif isinstance(expr, ast.Assign):
            self._compile_assign(expr)
        elif isinstance(expr, ast.Call):
            self._compile_call(expr)
        elif isinstance(expr, ast.Index):
            self._compile_address(expr)
            self._emit("loadr", _R0, _R0, 0)
        elif isinstance(expr, ast.FieldAccess):
            self._compile_address(expr)
            self._emit("loadr", _R0, _R0, 0)
        elif isinstance(expr, ast.IncDec):
            self._compile_incdec(expr)
        elif isinstance(expr, ast.Conditional):
            self._compile_conditional(expr)
        else:
            raise self._error("unsupported expression %r" % expr)

    def _compile_name_value(self, expr: ast.Name) -> None:
        name = expr.ident
        typ = self._type_of(expr)
        if isinstance(typ, ArrayType):
            self._compile_address(expr)  # arrays decay to their address
            return
        if name in self._scope.offsets:
            self._emit("loadr", _R0, REG_FP, self._scope.offsets[name])
        elif name in self._scope.statics:
            self._emit("load", _R0, SymRef(self._scope.statics[name].symbol))
        elif name in self._ctx.global_types:
            self._emit("load", _R0, SymRef(name))
        elif name in self._ctx.function_names:
            self._emit("lea", _R0, SymRef(name))
        else:
            raise self._error("unknown identifier %r" % name)

    def _compile_unary(self, expr: ast.Unary) -> None:
        if expr.op == "&":
            self._compile_address(expr.operand)
            return
        if expr.op == "*":
            self._type_of(expr)  # rejects dereferencing a non-pointer
            self._compile_expr(expr.operand)
            self._emit("loadr", _R0, _R0, 0)
            return
        self._compile_expr(expr.operand)
        if expr.op == "-":
            self._emit("neg", _R0)
        elif expr.op == "~":
            self._emit("not", _R0)
        elif expr.op == "!":
            true_label = self._label("nz")
            end_label = self._label("notend")
            self._emit("cmpi", _R0, 0)
            self._emit("jnz", LabelRef(true_label))
            self._emit("movi", _R0, 1)
            self._emit("jmp", LabelRef(end_label))
            self._emit_label(true_label)
            self._emit("movi", _R0, 0)
            self._emit_label(end_label)
        else:
            raise self._error("unsupported unary %r" % expr.op)

    def _compile_binary(self, expr: ast.Binary) -> None:
        if expr.op in ("&&", "||"):
            self._compile_short_circuit(expr)
            return
        if expr.op in _CMP_JUMPS:
            self._compile_comparison(expr)
            return

        scale_left, scale_right = self._pointer_scales(expr)
        self._compile_expr(expr.left)
        if scale_left > 1:
            self._emit("movi", _R1, scale_left)
            self._emit("mul", _R0, _R1)
        self._emit("push", _R0)
        self._compile_expr(expr.right)
        if scale_right > 1:
            self._emit("movi", _R1, scale_right)
            self._emit("mul", _R0, _R1)
        self._emit("movr", _R1, _R0)
        self._emit("pop", _R0)
        mnemonic = _ARITH_OPS.get(expr.op)
        if mnemonic is None:
            raise self._error("unsupported binary %r" % expr.op)
        self._emit(mnemonic, _R0, _R1)

    def _pointer_scales(self, expr: ast.Binary) -> Tuple[int, int]:
        """Element-size scaling for pointer arithmetic (C semantics)."""
        if expr.op not in ("+", "-"):
            return 1, 1
        left_elem = element_type(self._type_of(expr.left))
        right_elem = element_type(self._type_of(expr.right))
        if left_elem is not None and right_elem is None:
            return 1, left_elem.size
        if right_elem is not None and left_elem is None and expr.op == "+":
            return right_elem.size, 1
        return 1, 1

    def _compile_comparison(self, expr: ast.Binary) -> None:
        self._compile_expr(expr.left)
        self._emit("push", _R0)
        self._compile_expr(expr.right)
        self._emit("movr", _R1, _R0)
        self._emit("pop", _R0)
        self._emit("cmp", _R0, _R1)
        true_label = self._label("cmpt")
        end_label = self._label("cmpe")
        self._emit(_CMP_JUMPS[expr.op], LabelRef(true_label))
        self._emit("movi", _R0, 0)
        self._emit("jmp", LabelRef(end_label))
        self._emit_label(true_label)
        self._emit("movi", _R0, 1)
        self._emit_label(end_label)

    def _compile_short_circuit(self, expr: ast.Binary) -> None:
        out_label = self._label("sc")
        end_label = self._label("scend")
        short_jump = "jz" if expr.op == "&&" else "jnz"
        self._compile_expr(expr.left)
        self._emit("cmpi", _R0, 0)
        self._emit(short_jump, LabelRef(out_label))
        self._compile_expr(expr.right)
        self._emit("cmpi", _R0, 0)
        self._emit(short_jump, LabelRef(out_label))
        self._emit("movi", _R0, 1 if expr.op == "&&" else 0)
        self._emit("jmp", LabelRef(end_label))
        self._emit_label(out_label)
        self._emit("movi", _R0, 0 if expr.op == "&&" else 1)
        self._emit_label(end_label)

    def _compile_assign(self, expr: ast.Assign) -> None:
        self._compile_address(expr.target)
        self._emit("push", _R0)
        self._compile_expr(expr.value)
        self._emit("pop", _R1)
        self._emit("storer", _R1, 0, _R0)

    def _compile_call(self, expr: ast.Call) -> None:
        if expr.callee in ("__sched", "__hlt", "__syscall", "__cli",
                           "__sti"):
            self._compile_builtin(expr)
            return
        for arg in reversed(expr.args):
            self._compile_expr(arg)
            self._emit("push", _R0)
        self._emit("call", LabelRef(expr.callee))
        if expr.args:
            self._emit("addi", REG_SP, 4 * len(expr.args))

    def _compile_builtin(self, expr: ast.Call) -> None:
        """Builtins that lower to bare instructions rather than calls.

        ``__sched()`` yields the CPU (the scheduler's core primitive),
        ``__hlt()`` halts the thread, ``__syscall(n, a, b, c)`` places
        its operands in r0..r3 and executes the SYSCALL instruction, and
        ``__cli()``/``__sti()`` bracket critical sections (preemption
        off/on, nesting allowed).
        """
        if expr.callee in ("__cli", "__sti"):
            if expr.args:
                raise self._error("%s takes no arguments" % expr.callee)
            self._emit(expr.callee[2:])  # cli / sti
            self._emit("movi", _R0, 0)
            return
        if expr.callee == "__sched":
            if expr.args:
                raise self._error("__sched takes no arguments")
            self._emit("sched")
            self._emit("movi", _R0, 0)
            return
        if expr.callee == "__hlt":
            if expr.args:
                raise self._error("__hlt takes no arguments")
            self._emit("hlt")
            return
        if len(expr.args) != 4:
            raise self._error("__syscall takes exactly 4 arguments")
        for arg in reversed(expr.args):
            self._compile_expr(arg)
            self._emit("push", _R0)
        for reg in (0, 1, 2, 3):
            self._emit("pop", reg)
        self._emit("syscall")

    def _compile_incdec(self, expr: ast.IncDec) -> None:
        step = expr.delta
        elem = element_type(self._type_of(expr.target))
        if elem is not None:
            step *= elem.size
        self._compile_address(expr.target)
        self._emit("movr", _R2, _R0)
        self._emit("loadr", _R0, _R2, 0)
        self._emit("movr", _R1, _R0)
        self._emit("addi", _R1, step)
        self._emit("storer", _R2, 0, _R1)
        if expr.is_prefix:
            self._emit("movr", _R0, _R1)
        # postfix leaves the old value in r0

    def _compile_conditional(self, expr: ast.Conditional) -> None:
        else_label = self._label("celse")
        end_label = self._label("cend")
        self._compile_expr(expr.cond)
        self._emit("cmpi", _R0, 0)
        self._emit("jz", LabelRef(else_label))
        self._compile_expr(expr.then)
        self._emit("jmp", LabelRef(end_label))
        self._emit_label(else_label)
        self._compile_expr(expr.otherwise)
        self._emit_label(end_label)

    # -- lvalue addresses -------------------------------------------------------

    def _compile_address(self, expr: ast.Expr) -> None:
        """Evaluate the address of an lvalue into r0."""
        if isinstance(expr, ast.Name):
            name = expr.ident
            if name in self._scope.offsets:
                self._emit("movr", _R0, REG_FP)
                self._emit("addi", _R0, self._scope.offsets[name])
            elif name in self._scope.statics:
                self._emit("lea", _R0, SymRef(self._scope.statics[name].symbol))
            elif name in self._ctx.global_types:
                self._emit("lea", _R0, SymRef(name))
            elif name in self._ctx.function_names:
                self._emit("lea", _R0, SymRef(name))
            else:
                raise self._error("unknown identifier %r" % name)
        elif isinstance(expr, ast.Unary) and expr.op == "*":
            self._compile_expr(expr.operand)
        elif isinstance(expr, ast.Index):
            elem = element_type(self._type_of(expr.base))
            if elem is None:
                raise self._error("indexing a non-array/pointer")
            self._compile_expr(expr.base)  # array decays to address
            self._emit("push", _R0)
            self._compile_expr(expr.index)
            if elem.size != 1:
                self._emit("movr", _R1, _R0)
                self._emit("movi", _R0, elem.size)
                self._emit("mul", _R0, _R1)
            self._emit("movr", _R1, _R0)
            self._emit("pop", _R0)
            self._emit("add", _R0, _R1)
        elif isinstance(expr, ast.FieldAccess):
            offset, _ = self._field_info(expr)
            if expr.arrow:
                self._compile_expr(expr.base)
            else:
                self._compile_address(expr.base)
            if offset:
                self._emit("addi", _R0, offset)
        else:
            raise self._error("expression is not an lvalue: %r" % expr)


def compile_function(fn: ast.FunctionDef, ctx: UnitContext) -> FunctionCode:
    """Compile one function definition into assembler items."""
    return FunctionCompiler(fn, ctx).compile()

"""Running a rollout on a remote ``repro worker``.

A fleet of simulated kernels is in-process state, so it cannot be
scattered over the stateless per-CVE item protocol the evaluation
fabric uses.  Instead the *whole rollout* ships as one work item
(``kind: "fleet-rollout"``, the plan as plain JSON): the worker boots
the fleet, runs the waves, streams one ``result`` frame per finished
wave (so the coordinator side sees canary progress live), and returns
the full report dict in the ``item-done`` frame.  The connection uses
the same authenticated handshake as evaluation traffic — a secret-
protected worker runs rollouts only for peers that prove the secret.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Optional

from repro.distributed import protocol
from repro.distributed.protocol import ProtocolError
from repro.fleet.model import (
    RolloutError,
    RolloutPlan,
    RolloutReport,
)

#: a rollout boots a fleet and runs every wave; allow it minutes
DEFAULT_TIMEOUT = 300.0


def execute_rollout_item(
        plan_data: Dict[str, Any],
        on_wave: Optional[Callable[[Dict[str, Any]], None]] = None,
        ) -> Dict[str, Any]:
    """Worker side: run the plan, reporting each wave as it closes.

    Returns the report's JSON dict (the worker ships it in
    ``item-done``).  Waves are streamed *live* — the orchestrator's
    ``on_wave`` hook fires the moment each wave's verdict lands, so a
    watching coordinator (the control plane polling a rollout record)
    sees canary progress while later waves are still running.
    """
    from repro.fleet.orchestrator import rollout_corpus_cve

    plan = RolloutPlan.from_json_dict(plan_data)
    stream = (None if on_wave is None
              else (lambda wave: on_wave(wave.to_json_dict())))
    report = rollout_corpus_cve(plan, on_wave=stream)
    return report.to_json_dict()


def run_remote_rollout(
        address: str, plan: RolloutPlan,
        secret: Optional[bytes] = None,
        timeout: float = DEFAULT_TIMEOUT,
        on_wave: Optional[Callable[[Dict[str, Any]], None]] = None,
        ) -> RolloutReport:
    """Client side: run ``plan`` on the worker at ``host:port``.

    Raises :class:`RolloutError` when the worker reports a failure and
    lets :class:`~repro.distributed.protocol.AuthError` /
    :class:`ProtocolError` propagate for connection-level problems.
    """
    host, port = protocol.parse_address(address)
    if secret is None:
        secret = protocol.default_secret()
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = protocol.connect_stream(sock, secret)
        stream.send({
            "type": protocol.HELLO,
            "version": protocol.PROTOCOL_VERSION,
            "disk_cache": None})
        ready = stream.recv()
        if ready is None or ready.get("type") != protocol.READY:
            raise ProtocolError(
                "worker %s rejected the handshake: %r"
                % (address,
                   (ready or {}).get("error", "connection closed")))
        stream.send({
            "type": protocol.ITEM, "item_id": "rollout-0",
            "kind": "fleet-rollout",
            "plan": plan.to_json_dict()})
        report_data: Optional[Dict[str, Any]] = None
        while True:
            message = stream.recv()
            if message is None:
                raise ConnectionError(
                    "worker %s closed before finishing the rollout"
                    % address)
            kind = message.get("type")
            if kind == protocol.RESULT:
                if on_wave is not None and "wave" in message:
                    on_wave(message["wave"])
            elif kind == protocol.ITEM_DONE:
                report_data = message.get("report")
                break
            elif kind == protocol.ERROR:
                raise RolloutError(
                    "remote rollout failed on %s:\n%s"
                    % (address, message.get("error", "")))
        try:
            stream.send({"type": protocol.SHUTDOWN})
        except (ConnectionError, ProtocolError, OSError):
            pass
        if not isinstance(report_data, dict):
            raise ProtocolError("worker %s sent no rollout report"
                                % address)
        return RolloutReport.from_json_dict(report_data)
    finally:
        try:
            sock.close()
        except OSError:
            pass

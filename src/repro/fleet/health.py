"""Health gating: is a fleet member safe to keep, or must we roll back?

A member's health combines three signals, all of which the paper's
production story needs:

1. **machine liveness** — :meth:`Machine.health`: any oops ever, or any
   faulted thread still on the scheduler, is red.  This catches an
   update that crashes the kernel *after* applying cleanly.
2. **stack-check exhaustion** — surfaced at apply time as
   :class:`~repro.errors.StackCheckError` (§5.2's sleeping-thread
   hazard); the orchestrator feeds it in as a failed apply rather than
   a probe result, since the kernel itself is untouched.
3. **workload probe** — the corpus CVE's semantics probe run against
   the live member: a patched member must return the *post* value, an
   unpatched member must still return the *pre* value.  A probe that
   faults (MachineError) is red regardless of value.

The probe expectation flips per member within one wave — the canary
members are patched while the rest of the fleet is not — which is why
:func:`check_member` takes ``expect_patched`` explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import MachineError
from repro.kernel.machine import Machine


@dataclass(frozen=True)
class HealthPolicy:
    """The workload probe a rollout runs between waves.

    Built from a corpus CVE's :class:`ProbeSpec` —
    ``function(args)`` returns ``pre_value`` on a vulnerable kernel and
    ``post_value`` once properly patched.  ``setup`` calls run first,
    results ignored.
    """

    function: str
    args: Tuple[int, ...] = ()
    pre_value: int = 0
    post_value: int = 0
    setup: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()

    @classmethod
    def from_probe(cls, probe) -> "HealthPolicy":
        """Adapt an evaluation ``ProbeSpec`` (duck-typed)."""
        return cls(function=probe.function, args=tuple(probe.args),
                   pre_value=probe.pre, post_value=probe.post,
                   setup=tuple((fn, tuple(args))
                               for fn, args in probe.setup))

    def expected(self, patched: bool) -> int:
        return self.post_value if patched else self.pre_value


@dataclass
class MemberHealth:
    """One member's verdict at a health gate."""

    healthy: bool
    reasons: List[str] = field(default_factory=list)
    #: raw machine counters (lands in the member report JSON)
    machine: dict = field(default_factory=dict)
    probe_value: Optional[int] = None

    def reason_text(self) -> str:
        return "; ".join(self.reasons)


def check_machine(machine: Machine,
                  policy: Optional[HealthPolicy],
                  expect_patched: bool) -> MemberHealth:
    """The full health gate for one live machine."""
    snapshot = machine.health()
    health = MemberHealth(healthy=snapshot.healthy,
                          machine=snapshot.to_json_dict())
    if not snapshot.healthy:
        oops = machine.oopses[-1] if machine.oopses else None
        health.reasons.append(
            "oops on thread %s at 0x%08x: %s"
            % (oops.thread_name, oops.ip, oops.message) if oops
            else "%d faulted thread(s)" % snapshot.faulted_threads)
    if policy is not None:
        try:
            value = _run_policy_probe(machine, policy)
        except MachineError as exc:
            health.healthy = False
            health.reasons.append("health probe faulted: %s" % exc)
            # the probe fault itself registers as an oops; refresh the
            # counters so the report shows the post-probe state
            health.machine = machine.health().to_json_dict()
            return health
        health.probe_value = value
        expected = policy.expected(expect_patched)
        if value != expected:
            health.healthy = False
            health.reasons.append(
                "probe %s returned %d, expected %d (%s member)"
                % (policy.function, value, expected,
                   "patched" if expect_patched else "unpatched"))
    return health


def _run_policy_probe(machine: Machine, policy: HealthPolicy) -> int:
    for fn, args in policy.setup:
        machine.call_function(fn, list(args))
    value = machine.call_function(policy.function, list(policy.args))
    return value if value is not None else 0

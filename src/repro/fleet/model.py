"""Rollout plans and reports: the fleet subsystem's data model.

A :class:`RolloutPlan` says *what to do* — which CVE's update to roll
out, over how many machines, how fast the waves grow, which faults to
inject — and is plain JSON both ways so it can ride a ``fleet-rollout``
work item to a remote worker unchanged.  A :class:`RolloutReport` says
*what happened*: one :class:`WaveReport` per canary wave, one
:class:`MemberReport` per member the wave touched, and a fleet-level
outcome.  Reports render to deterministic JSON exactly like analyzer
reports (sorted keys, no wall-clock fields), so two runs of the same
plan against the same kernel diff as byte-identical documents.

The last report is persisted next to the last trace
(``cache_root()/last-rollout.json``) — ``repro fleet status`` and
``repro fleet rollback`` read it back.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.pipeline.store import cache_root

#: wave verdicts
GREEN = "green"
RED = "red"

#: fleet-level outcomes
OUTCOME_COMPLETE = "complete"
OUTCOME_HALTED = "halted"
OUTCOME_GATED = "gated"
#: set by ``repro fleet rollback`` after reversing a finished rollout
OUTCOME_ROLLED_BACK = "rolled-back"

#: member outcomes (``MemberReport.outcome``)
MEMBER_UPDATED = "updated"
MEMBER_OOPS = "oops"
MEMBER_STACK_CHECK = "stack-check-exhausted"
MEMBER_APPLY_FAILED = "apply-failed"
MEMBER_PROBE_FAILED = "probe-failed"
MEMBER_LOST = "lost"

#: injectable fault kinds
FAULT_OOPS = "oops"
FAULT_WEDGE = "wedge"
FAULT_KILL = "kill"
FAULT_KINDS = (FAULT_OOPS, FAULT_WEDGE, FAULT_KILL)


class RolloutError(ReproError):
    """A rollout could not run at all (bad plan, unknown CVE, ...)."""


@dataclass(frozen=True)
class InjectedFault:
    """One deliberate failure, pinned to a member and a wave.

    ``oops``
        after the member's apply succeeds, crash a kernel thread on it
        (dereference of an unmapped address) — the health gate must go
        red and the wave must roll back.
    ``wedge``
        before the member's apply, park a thread asleep *inside* a
        patched function; the conservative stack check then vetoes
        stop_machine until its retries exhaust (§5.2's sleeping-thread
        hazard, on demand).
    ``kill``
        the member disappears mid-wave, as a crashed or partitioned
        host: no apply, no undo, reported ``lost``.
    """

    kind: str
    member: int
    wave: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise RolloutError("unknown fault kind %r (one of %s)"
                               % (self.kind, ", ".join(FAULT_KINDS)))

    def to_json_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "member": self.member,
                "wave": self.wave}

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "InjectedFault":
        return cls(kind=data["kind"], member=int(data["member"]),
                   wave=int(data.get("wave", 0)))

    @classmethod
    def parse(cls, kind: str, text: str) -> "InjectedFault":
        """CLI form ``MEMBER:WAVE`` (``3:1`` = member 3 in wave 1)."""
        member_text, sep, wave_text = text.partition(":")
        try:
            member = int(member_text)
            wave = int(wave_text) if sep else 0
        except ValueError:
            raise RolloutError("fault %r is not MEMBER[:WAVE]" % text)
        return cls(kind=kind, member=member, wave=wave)


@dataclass
class RolloutPlan:
    """Everything a rollout needs, serializable both ways."""

    cve_id: str
    fleet_size: int = 4
    #: members patched in wave 0
    canary: int = 1
    #: wave size multiplier after a green wave
    growth: int = 2
    #: instructions each member's scheduler runs between waves (the
    #: fleet stays *alive*; updates land on machines with history)
    keepalive_instructions: int = 2_000
    #: run the corpus probe as the between-wave health workload
    probe: bool = True
    #: what members execute between waves: "spinner" parks them on the
    #: kernel's sys_spin loop; "stress" loads real syscall stress
    #: threads (repro.evaluation.stress.load_sustained_workload), the
    #: under-load rollout mode
    workload: str = "spinner"
    faults: List[InjectedFault] = field(default_factory=list)
    #: registry-backed mode (the control plane): names the registered
    #: member behind each fleet index, one per member, in wave order
    member_ids: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.fleet_size < 1:
            raise RolloutError("fleet_size must be >= 1")
        if not 1 <= self.canary <= self.fleet_size:
            raise RolloutError("canary must be in 1..fleet_size")
        if self.growth < 1:
            raise RolloutError("growth must be >= 1")
        if self.workload not in ("spinner", "stress"):
            raise RolloutError("workload must be 'spinner' or 'stress'")
        if self.member_ids and len(self.member_ids) != self.fleet_size:
            raise RolloutError("member_ids names %d members for a "
                               "fleet of %d"
                               % (len(self.member_ids), self.fleet_size))
        for fault in self.faults:
            if not 0 <= fault.member < self.fleet_size:
                raise RolloutError("fault member %d outside fleet 0..%d"
                                   % (fault.member, self.fleet_size - 1))

    def rollout_id(self) -> str:
        return "rollout-%s-n%d" % (self.cve_id, self.fleet_size)

    def member_name(self, index: int) -> str:
        """Registry id behind a fleet index (``member-N`` when none)."""
        if self.member_ids and 0 <= index < len(self.member_ids):
            return self.member_ids[index]
        return "member-%d" % index

    def wave_sizes(self) -> List[int]:
        """Deterministic wave schedule: canary, then exponential."""
        sizes: List[int] = []
        remaining = self.fleet_size
        size = self.canary
        while remaining > 0:
            take = min(size, remaining)
            sizes.append(take)
            remaining -= take
            size *= self.growth
        return sizes

    def faults_for(self, wave: int, member: int) -> List[InjectedFault]:
        return [f for f in self.faults
                if f.wave == wave and f.member == member]

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "cve_id": self.cve_id,
            "fleet_size": self.fleet_size,
            "canary": self.canary,
            "growth": self.growth,
            "keepalive_instructions": self.keepalive_instructions,
            "probe": self.probe,
            "workload": self.workload,
            "faults": [f.to_json_dict() for f in self.faults],
            "member_ids": list(self.member_ids),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "RolloutPlan":
        return cls(
            cve_id=data["cve_id"],
            fleet_size=int(data.get("fleet_size", 4)),
            canary=int(data.get("canary", 1)),
            growth=int(data.get("growth", 2)),
            keepalive_instructions=int(
                data.get("keepalive_instructions", 2_000)),
            probe=bool(data.get("probe", True)),
            workload=str(data.get("workload", "spinner")),
            faults=[InjectedFault.from_json_dict(f)
                    for f in data.get("faults", [])],
            member_ids=[str(m) for m in data.get("member_ids", [])])


@dataclass
class MemberReport:
    """What one wave did to one member."""

    member: int
    outcome: str
    detail: str = ""
    #: the update landed (and, unless rolled back, is still live)
    applied: bool = False
    #: the wave went red and this member's update was LIFO-undone
    rolled_back: bool = False
    #: ``Machine.health().to_json_dict()`` at the wave's health gate
    health: Dict[str, Any] = field(default_factory=dict)
    stack_check_attempts: int = 0

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "member": self.member,
            "outcome": self.outcome,
            "detail": self.detail,
            "applied": self.applied,
            "rolled_back": self.rolled_back,
            "health": dict(sorted(self.health.items())),
            "stack_check_attempts": self.stack_check_attempts,
        }


@dataclass
class WaveReport:
    """One canary wave: who was patched and how it went."""

    index: int
    members: List[int]
    verdict: str = GREEN
    member_reports: List[MemberReport] = field(default_factory=list)
    #: members of *this* wave whose update was undone after a red
    rolled_back: List[int] = field(default_factory=list)

    def report_for(self, member: int) -> Optional[MemberReport]:
        for report in self.member_reports:
            if report.member == member:
                return report
        return None

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "members": sorted(self.members),
            "verdict": self.verdict,
            "member_reports": [
                r.to_json_dict()
                for r in sorted(self.member_reports,
                                key=lambda r: r.member)],
            "rolled_back": sorted(self.rolled_back),
        }


@dataclass
class RolloutReport:
    """The whole rollout, deterministic JSON like analyzer reports."""

    rollout_id: str
    cve_id: str
    kernel_version: str
    plan: RolloutPlan
    outcome: str = OUTCOME_COMPLETE
    #: analyzer verdict that gated the rollout ("" when no analysis ran)
    gate_verdict: str = ""
    gate_detail: str = ""
    waves: List[WaveReport] = field(default_factory=list)
    #: members running the update when the rollout ended
    updated_members: List[int] = field(default_factory=list)
    rolled_back_members: List[int] = field(default_factory=list)
    lost_members: List[int] = field(default_factory=list)
    #: every surviving member answered the final health probe
    survivors_healthy: bool = True

    def red_wave(self) -> Optional[WaveReport]:
        for wave in self.waves:
            if wave.verdict == RED:
                return wave
        return None

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "rollout_id": self.rollout_id,
            "cve_id": self.cve_id,
            "kernel_version": self.kernel_version,
            "plan": self.plan.to_json_dict(),
            "outcome": self.outcome,
            "gate_verdict": self.gate_verdict,
            "gate_detail": self.gate_detail,
            "waves": [w.to_json_dict() for w in self.waves],
            "updated_members": sorted(self.updated_members),
            "rolled_back_members": sorted(self.rolled_back_members),
            "lost_members": sorted(self.lost_members),
            "survivors_healthy": self.survivors_healthy,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "RolloutReport":
        report = cls(
            rollout_id=data["rollout_id"],
            cve_id=data["cve_id"],
            kernel_version=data.get("kernel_version", ""),
            plan=RolloutPlan.from_json_dict(data["plan"]),
            outcome=data.get("outcome", OUTCOME_COMPLETE),
            gate_verdict=data.get("gate_verdict", ""),
            gate_detail=data.get("gate_detail", ""),
            updated_members=list(data.get("updated_members", [])),
            rolled_back_members=list(data.get("rolled_back_members", [])),
            lost_members=list(data.get("lost_members", [])),
            survivors_healthy=bool(data.get("survivors_healthy", True)))
        for wave_data in data.get("waves", []):
            wave = WaveReport(index=int(wave_data["index"]),
                              members=list(wave_data.get("members", [])),
                              verdict=wave_data.get("verdict", GREEN),
                              rolled_back=list(
                                  wave_data.get("rolled_back", [])))
            for member_data in wave_data.get("member_reports", []):
                wave.member_reports.append(MemberReport(
                    member=int(member_data["member"]),
                    outcome=member_data["outcome"],
                    detail=member_data.get("detail", ""),
                    applied=bool(member_data.get("applied", False)),
                    rolled_back=bool(
                        member_data.get("rolled_back", False)),
                    health=dict(member_data.get("health", {})),
                    stack_check_attempts=int(
                        member_data.get("stack_check_attempts", 0))))
            report.waves.append(wave)
        return report

    def render(self) -> str:
        lines = ["%s  %s on %s: %s"
                 % (self.rollout_id, self.cve_id, self.kernel_version,
                    self.outcome)]
        if self.gate_verdict:
            lines.append("  gate: analyzer verdict %r%s"
                         % (self.gate_verdict,
                            " — " + self.gate_detail
                            if self.gate_detail else ""))
        for wave in self.waves:
            lines.append("  wave %d [%s]: members %s"
                         % (wave.index, wave.verdict,
                            ", ".join(str(m)
                                      for m in sorted(wave.members))))
            for member in sorted(wave.member_reports,
                                 key=lambda r: r.member):
                suffix = ""
                if member.rolled_back:
                    suffix = "  (rolled back)"
                elif member.detail:
                    suffix = "  (%s)" % member.detail
                lines.append("    member %-3d %s%s"
                             % (member.member, member.outcome, suffix))
        lines.append("  updated: %s"
                     % (", ".join(str(m) for m
                                  in sorted(self.updated_members))
                        or "none"))
        if self.rolled_back_members:
            lines.append("  rolled back: %s"
                         % ", ".join(str(m) for m
                                     in sorted(self.rolled_back_members)))
        if self.lost_members:
            lines.append("  lost: %s"
                         % ", ".join(str(m) for m
                                     in sorted(self.lost_members)))
        lines.append("  survivors healthy: %s"
                     % ("yes" if self.survivors_healthy else "NO"))
        return "\n".join(lines)


# -- persistence (``repro fleet status`` / ``rollback``) -------------------

ROLLOUT_FILE_ENV = "REPRO_ROLLOUT_FILE"


def default_rollout_path() -> str:
    return os.environ.get(ROLLOUT_FILE_ENV) or os.path.join(
        cache_root(), "last-rollout.json")


def save_report(report: RolloutReport,
                path: Optional[str] = None) -> str:
    path = path or default_rollout_path()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(report.to_json() + "\n")
    os.replace(tmp, path)
    return path


def load_report(path: Optional[str] = None) -> RolloutReport:
    """Read the last report back.

    Any way the persisted report can be unusable — missing, torn JSON,
    a document that is not a rollout report — raises
    :class:`RolloutError` saying "no rollout recorded", so `repro
    fleet status` degrades to exit code 2 instead of a traceback.
    """
    path = path or default_rollout_path()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise RolloutError("no rollout recorded at %s (run `repro "
                           "fleet rollout` first)" % path)
    except (OSError, ValueError) as exc:
        raise RolloutError("no rollout recorded at %s (file is "
                           "unreadable or corrupt: %s)" % (path, exc))
    try:
        return RolloutReport.from_json_dict(data)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise RolloutError("no rollout recorded at %s (file does not "
                           "hold a rollout report: %s)" % (path, exc))

"""The rollout orchestrator: canary waves over a live fleet.

This is the deployment layer the paper's product story implies (§1:
systems administrators patch *running* machines): boot N simulated
kernels from one shared build, keep them alive with a spinner workload,
then push an :class:`UpdatePack` out in waves —

1. **gate** — the static analyzer already verdicted the pack during
   ``ksplice_create``; a ``reject`` stops the rollout before any
   machine is touched.
2. **wave w** — apply the pack to the next slice of the fleet (wave 0
   is the ``canary`` slice; each green wave multiplies the next slice
   by ``growth``).  Every member's apply runs the full core pipeline
   (run-pre, stop_machine, stack check) with its stages nested under
   the wave's trace node, so ``repro trace`` shows the whole rollout.
3. **health** — run every surviving member for a keepalive slice, then
   gate on :func:`repro.fleet.health.check_machine`: machine liveness
   plus the corpus CVE's semantics probe (patched members must show
   the fixed behaviour, unpatched members the original).
4. **green** → grow and repeat; **red** → LIFO-undo the pack from
   every member this wave patched (earlier green waves stay patched —
   the blast radius of a halt is the failed wave, nothing more), then
   halt.

Failure matrix (who goes red, what gets undone):

====================  =========================  =====================
failure               member outcome             rollback
====================  =========================  =====================
apply raises          ``stack-check-exhausted``  nothing to undo on
(StackCheckError,     / ``apply-failed``         that member (apply is
run-pre, symbols...)                             atomic); wave red
oops after apply      ``oops``                   member undone
probe wrong/faulted   ``probe-failed``           member undone
member killed         ``lost``                   unreachable — recorded
                                                 lost, never undone
====================  =========================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.core.apply import KspliceCore
from repro.core.update import UpdatePack
from repro.errors import KspliceError, StackCheckError
from repro.fleet.health import HealthPolicy, check_machine
from repro.fleet.model import (
    FAULT_KILL,
    FAULT_OOPS,
    FAULT_WEDGE,
    GREEN,
    MEMBER_APPLY_FAILED,
    MEMBER_LOST,
    MEMBER_OOPS,
    MEMBER_PROBE_FAILED,
    MEMBER_STACK_CHECK,
    MEMBER_UPDATED,
    OUTCOME_GATED,
    OUTCOME_HALTED,
    RED,
    MemberReport,
    RolloutError,
    RolloutPlan,
    RolloutReport,
    WaveReport,
)
from repro.kernel.machine import Machine, boot_kernel
from repro.pipeline.stage import FAILED
from repro.pipeline.trace import Trace

#: the keepalive spinner's tick budget — effectively forever
_SPINNER_TICKS = 1 << 30

#: an unmapped address; jumping here is the injected oops
_OOPS_ADDRESS = 0x10


@dataclass
class FleetMember:
    """One machine in the fleet, with its own update stack."""

    index: int
    machine: Machine
    core: KspliceCore
    alive: bool = True

    @property
    def name(self) -> str:
        return "member-%d" % self.index

    @property
    def updated(self) -> bool:
        return bool(self.core.applied)


@dataclass
class Fleet:
    """N booted kernels sharing one build, kept alive between waves."""

    members: List[FleetMember] = field(default_factory=list)

    @classmethod
    def boot(cls, kernel, size: int,
             stack_check_retries: int = 5,
             retry_run_instructions: int = 2_000,
             workload: str = "spinner") -> "Fleet":
        """Boot ``size`` machines of a generated kernel.

        The tree is compiled once (``run_build_for``'s content cache)
        and linked per member, so a 16-machine fleet costs one build
        plus 16 cheap boots.  Each member gets a ``keepalive`` spinner
        thread: the fleet has *running* kernels between waves, not
        parked ones, so applies land on machines with live stacks.

        ``workload="stress"`` additionally loads real syscall stress
        threads on every member
        (:func:`repro.evaluation.stress.load_sustained_workload`), so
        keepalive slices execute production-like traffic — kernel code
        on thread stacks — instead of an idle spin.
        """
        from repro.evaluation.engine import run_build_for
        from repro.evaluation.stress import load_sustained_workload

        build = run_build_for(kernel)
        fleet = cls()
        for index in range(size):
            machine = boot_kernel(kernel.tree, build=build)
            try:
                machine.create_thread(
                    "sys_spin", args=(_SPINNER_TICKS, 0, 0),
                    name="keepalive-%d" % index)
            except Exception:
                pass  # kernels without sys_spin idle between waves
            if workload == "stress":
                load_sustained_workload(machine)
            fleet.members.append(FleetMember(
                index=index, machine=machine,
                core=KspliceCore(
                    machine,
                    stack_check_retries=stack_check_retries,
                    retry_run_instructions=retry_run_instructions)))
        return fleet

    def alive_members(self) -> List[FleetMember]:
        return [m for m in self.members if m.alive]

    def keepalive(self, instructions: int) -> None:
        for member in self.alive_members():
            member.machine.run(instructions)


class RolloutOrchestrator:
    """Drives one :class:`RolloutPlan` over one :class:`Fleet`."""

    def __init__(self, fleet: Fleet, plan: RolloutPlan,
                 policy: Optional[HealthPolicy] = None,
                 trace: Optional[Trace] = None,
                 kernel_version: str = "",
                 on_wave=None):
        self.fleet = fleet
        self.plan = plan
        self.policy = policy if plan.probe else None
        self.trace = trace if trace is not None else Trace(
            label=plan.rollout_id())
        self.kernel_version = kernel_version
        #: Optional[Callable[[WaveReport], None]]: called the moment a
        #: wave's verdict lands — the control plane streams each wave
        #: into its rollout record so progress is observable live
        self.on_wave = on_wave

    def run(self, pack: UpdatePack, analysis=None) -> RolloutReport:
        """The whole rollout; never raises for in-band failures —
        every red path lands in the report instead."""
        report = RolloutReport(
            rollout_id=self.plan.rollout_id(),
            cve_id=self.plan.cve_id,
            kernel_version=self.kernel_version or pack.kernel_version,
            plan=self.plan)
        if not self._gate(report, analysis):
            return report
        schedule = self.plan.wave_sizes()
        cursor = 0
        for wave_index, size in enumerate(schedule):
            members = [m for m in
                       self.fleet.members[cursor:cursor + size]]
            cursor += size
            wave = WaveReport(index=wave_index,
                              members=[m.index for m in members])
            report.waves.append(wave)
            with self.trace.stage("wave-%d" % wave_index) as rep:
                self._run_wave(wave, members, pack)
                rep.artifacts["verdict"] = wave.verdict
                rep.counters["members"] = len(members)
            if self.on_wave is not None:
                self.on_wave(wave)
            if wave.verdict == RED:
                report.outcome = OUTCOME_HALTED
                break
        self._finish(report)
        return report

    # -- stages --------------------------------------------------------------

    def _gate(self, report: RolloutReport, analysis) -> bool:
        from repro.analysis.model import VERDICT_REJECT

        with self.trace.stage("gate") as rep:
            if analysis is None:
                report.gate_detail = "no analyzer report supplied"
                rep.artifacts["verdict"] = "(none)"
                return True
            report.gate_verdict = analysis.verdict
            rep.artifacts["verdict"] = analysis.verdict
            if analysis.verdict == VERDICT_REJECT:
                findings = analysis.findings_for(VERDICT_REJECT)
                report.gate_detail = (findings[0].detail if findings
                                      else "analyzer rejected the pack")
                report.outcome = OUTCOME_GATED
                rep.outcome = FAILED
                rep.error = ("analyzer verdict 'reject': %s"
                             % report.gate_detail)
                return False
        return True

    def _run_wave(self, wave: WaveReport, members: List[FleetMember],
                  pack: UpdatePack) -> None:
        red = False
        for member in members:
            if not member.alive:
                wave.member_reports.append(MemberReport(
                    member=member.index, outcome=MEMBER_LOST,
                    detail="member was already lost"))
                continue
            member_report = self._apply_to_member(wave, member, pack)
            wave.member_reports.append(member_report)
            if member_report.outcome in (MEMBER_STACK_CHECK,
                                         MEMBER_APPLY_FAILED):
                red = True
            if member_report.outcome == MEMBER_LOST and \
                    member_report.applied:
                # a canary that dies right after being patched is
                # attributed to the update until proven otherwise
                red = True
        # kills aimed at members outside this wave: background host
        # loss, not the update's fault
        for fault in self.plan.faults:
            if fault.kind == FAULT_KILL and fault.wave == wave.index:
                member = self.fleet.members[fault.member]
                if member.alive and fault.member not in wave.members:
                    member.alive = False
        # The health gate runs even when an apply already went red:
        # the wave is doomed either way, but the gate attributes *why*
        # each member is unhealthy (an injected oops shows up as
        # ``oops``, not as an anonymous rolled-back ``updated``).
        with self.trace.stage("health") as rep:
            self.fleet.keepalive(self.plan.keepalive_instructions)
            red = not self._health_gate(wave) or red
            rep.artifacts["verdict"] = RED if red else GREEN
        if red:
            wave.verdict = RED
            with self.trace.stage("rollback") as rep:
                self._rollback_wave(wave, members)
                rep.counters["undone"] = len(wave.rolled_back)
        else:
            wave.verdict = GREEN

    def _apply_to_member(self, wave: WaveReport, member: FleetMember,
                         pack: UpdatePack) -> MemberReport:
        member_report = MemberReport(member=member.index,
                                     outcome=MEMBER_UPDATED)
        faults = self.plan.faults_for(wave.index, member.index)
        with self.trace.stage(member.name):
            for fault in faults:
                if fault.kind == FAULT_WEDGE:
                    self._inject_wedge(member, pack)
            try:
                applied = member.core.apply(pack, trace=self.trace)
                member_report.applied = True
                member_report.stack_check_attempts = \
                    applied.stack_check_attempts
            except StackCheckError as exc:
                member_report.outcome = MEMBER_STACK_CHECK
                member_report.detail = str(exc)
                member_report.stack_check_attempts = \
                    member.core.stack_check_retries
                return member_report
            except KspliceError as exc:
                member_report.outcome = MEMBER_APPLY_FAILED
                member_report.detail = "%s: %s" % (type(exc).__name__,
                                                   exc)
                return member_report
            for fault in faults:
                if fault.kind == FAULT_OOPS:
                    self._inject_oops(member)
                elif fault.kind == FAULT_KILL:
                    member.alive = False
                    member_report.outcome = MEMBER_LOST
                    member_report.detail = \
                        "killed mid-wave after apply"
        return member_report

    def _inject_wedge(self, member: FleetMember,
                      pack: UpdatePack) -> None:
        """Park a sleeping thread inside a to-be-patched function, the
        §5.2 hazard: the stack check must veto every stop_machine
        attempt until retries exhaust."""
        for fn_name in pack.all_changed_functions():
            try:
                thread = member.machine.create_thread(
                    fn_name, args=(0, 0, 0),
                    name="wedged-%s" % fn_name)
            except Exception:
                continue
            member.machine.sleep_thread(thread)
            return
        raise RolloutError("wedge fault: no changed function of %s "
                           "resolves on %s"
                           % (pack.update_id, member.name))

    def _inject_oops(self, member: FleetMember) -> None:
        """Crash one kernel thread (jump to an unmapped address)."""
        member.machine.create_thread(_OOPS_ADDRESS,
                                     name="fault-injected")
        member.machine.run(200)

    def _health_gate(self, wave: WaveReport) -> bool:
        """Probe every live member; update this wave's member reports
        with what the gate saw.  True = all green."""
        all_healthy = True
        for member in self.fleet.alive_members():
            health = check_machine(member.machine, self.policy,
                                   expect_patched=member.updated)
            member_report = wave.report_for(member.index)
            if member_report is not None:
                member_report.health = health.machine
            if health.healthy:
                continue
            all_healthy = False
            if member_report is not None:
                member_report.outcome = (
                    MEMBER_OOPS if member.machine.oopses
                    else MEMBER_PROBE_FAILED)
                member_report.detail = health.reason_text()
        return all_healthy

    def _rollback_wave(self, wave: WaveReport,
                       members: List[FleetMember]) -> None:
        """LIFO-undo the pack from every member this wave patched.

        Per member the wave's update is the newest on its stack, so
        ``undo_latest`` is exactly the §5.4-legal reversal; a lost
        member is unreachable and stays recorded as lost.
        """
        for member in reversed(members):
            member_report = wave.report_for(member.index)
            if member_report is None or not member_report.applied:
                continue
            if not member.alive:
                continue
            member.core.undo_latest(trace=self.trace)
            member_report.rolled_back = True
            wave.rolled_back.append(member.index)

    def _finish(self, report: RolloutReport) -> None:
        """Final census + survivor health (the acceptance check)."""
        red_members: Set[int] = set()
        red = report.red_wave()
        if red is not None:
            red_members = set(red.members)
            report.rolled_back_members = sorted(red.rolled_back)
        for member in self.fleet.members:
            if not member.alive:
                report.lost_members.append(member.index)
            elif member.updated:
                report.updated_members.append(member.index)
        with self.trace.stage("survivors") as rep:
            survivors = [m for m in self.fleet.alive_members()
                         if m.index not in red_members]
            healthy = True
            for member in survivors:
                health = check_machine(member.machine, self.policy,
                                       expect_patched=member.updated)
                if not health.healthy:
                    healthy = False
            report.survivors_healthy = healthy
            rep.counters["survivors"] = len(survivors)
            rep.artifacts["healthy"] = "yes" if healthy else "no"


def replay_rollback(report: RolloutReport,
                    trace: Optional[Trace] = None) -> RolloutReport:
    """``repro fleet rollback``: reverse everything a rollout left
    applied.

    Simulated machines do not outlive the process that booted them, so
    this is a *replay*: the recorded fleet is rebooted, the update is
    re-applied to the members the report says were updated, and then
    LIFO-undone from each — the undo path itself (stop_machine, stack
    check, reversal order) is the real §5.4 machinery.  The report is
    updated in place (``rolled-back`` outcome) and returned.
    """
    from repro.core.create import CreateReport, ksplice_create
    from repro.evaluation.corpus import corpus_by_id
    from repro.evaluation.engine import run_build_for
    from repro.evaluation.kernels import kernel_for_version
    from repro.fleet.model import OUTCOME_ROLLED_BACK

    if not report.updated_members:
        report.outcome = OUTCOME_ROLLED_BACK
        return report
    try:
        spec = corpus_by_id(report.cve_id)
    except KeyError:
        raise RolloutError("unknown CVE id %r in saved rollout"
                           % report.cve_id)
    trace = trace if trace is not None else Trace(
        label="rollback-%s" % report.rollout_id)
    kernel = kernel_for_version(spec.kernel_version)
    build = run_build_for(kernel)
    with trace.stage("create"):
        patch = kernel.patch_for(spec.cve_id,
                                 augmented=spec.table1 is not None)
        pack = ksplice_create(kernel.tree, patch,
                              description=spec.description,
                              report=CreateReport(),
                              run_build=build, trace=trace)
    with trace.stage("boot-fleet") as rep:
        fleet = Fleet.boot(kernel, report.plan.fleet_size,
                           workload=report.plan.workload)
        rep.counters["members"] = report.plan.fleet_size
    with trace.stage("replay") as rep:
        for index in sorted(report.updated_members):
            fleet.members[index].core.apply(pack, trace=trace)
        rep.counters["applied"] = len(report.updated_members)
    with trace.stage("rollback") as rep:
        for index in sorted(report.updated_members, reverse=True):
            fleet.members[index].core.undo_latest(trace=trace)
        rep.counters["undone"] = len(report.updated_members)
    healthy = True
    with trace.stage("survivors") as rep:
        for member in fleet.alive_members():
            if not check_machine(member.machine, None,
                                 expect_patched=False).healthy:
                healthy = False
        rep.artifacts["healthy"] = "yes" if healthy else "no"
    report.rolled_back_members = sorted(
        set(report.rolled_back_members) | set(report.updated_members))
    report.updated_members = []
    report.outcome = OUTCOME_ROLLED_BACK
    report.survivors_healthy = healthy
    return report


def rollout_corpus_cve(plan: RolloutPlan,
                       trace: Optional[Trace] = None,
                       on_wave=None) -> RolloutReport:
    """End-to-end: corpus CVE -> pack (analyzer-gated) -> fleet rollout.

    This is what ``repro fleet rollout --cve ...``, the
    ``fleet-rollout`` worker item, and a control-plane publish all
    run; ``on_wave`` (if given) receives each :class:`WaveReport` the
    moment its verdict lands.
    """
    from repro.core.create import CreateReport, ksplice_create
    from repro.evaluation.corpus import corpus_by_id
    from repro.evaluation.engine import run_build_for
    from repro.evaluation.kernels import kernel_for_version

    try:
        spec = corpus_by_id(plan.cve_id)
    except KeyError:
        raise RolloutError("unknown CVE id %r" % plan.cve_id)
    trace = trace if trace is not None else Trace(
        label=plan.rollout_id())
    kernel = kernel_for_version(spec.kernel_version)
    build = run_build_for(kernel)
    create_report = CreateReport()
    with trace.stage("create"):
        patch = kernel.patch_for(spec.cve_id,
                                 augmented=spec.table1 is not None)
        pack = ksplice_create(kernel.tree, patch,
                              description=spec.description,
                              report=create_report,
                              run_build=build, trace=trace)
    policy = None
    if plan.probe and spec.probe is not None:
        policy = HealthPolicy.from_probe(spec.probe)
    with trace.stage("boot-fleet") as rep:
        fleet = Fleet.boot(kernel, plan.fleet_size,
                           workload=plan.workload)
        rep.counters["members"] = plan.fleet_size
    orchestrator = RolloutOrchestrator(
        fleet, plan, policy=policy, trace=trace,
        kernel_version=spec.kernel_version, on_wave=on_wave)
    return orchestrator.run(pack, analysis=create_report.analysis)

"""Fleet rollout service: canary waves over live simulated kernels.

The deployment layer above create/apply — what the Ksplice *product*
(Uptrack) did for real fleets: keep N machines running, push each
update out in canary waves, gate every wave on machine health plus a
workload probe, and automatically LIFO-undo a failed wave before it
spreads.

* :mod:`~repro.fleet.model` — :class:`RolloutPlan` (what to do, JSON
  both ways) and :class:`RolloutReport` (what happened, deterministic
  JSON), plus fault-injection specs and last-report persistence;
* :mod:`~repro.fleet.health` — the health gate: machine liveness +
  the corpus CVE's semantics probe with per-member expectations;
* :mod:`~repro.fleet.orchestrator` — :class:`Fleet` (N kernels, one
  shared build, keepalive workload) and :class:`RolloutOrchestrator`
  (gate -> waves -> health -> grow-or-rollback);
* :mod:`~repro.fleet.remote` — ship a whole rollout to an
  authenticated ``repro worker`` as one ``fleet-rollout`` item.

Entry points: ``repro fleet rollout|status|rollback`` and
:func:`~repro.fleet.orchestrator.rollout_corpus_cve`.
"""

from repro.fleet.health import HealthPolicy, MemberHealth, check_machine
from repro.fleet.model import (
    GREEN,
    OUTCOME_COMPLETE,
    OUTCOME_GATED,
    OUTCOME_HALTED,
    OUTCOME_ROLLED_BACK,
    RED,
    InjectedFault,
    MemberReport,
    RolloutError,
    RolloutPlan,
    RolloutReport,
    WaveReport,
    default_rollout_path,
    load_report,
    save_report,
)
from repro.fleet.orchestrator import (
    Fleet,
    FleetMember,
    RolloutOrchestrator,
    replay_rollback,
    rollout_corpus_cve,
)
from repro.fleet.remote import run_remote_rollout

__all__ = [
    "Fleet",
    "FleetMember",
    "GREEN",
    "HealthPolicy",
    "InjectedFault",
    "MemberHealth",
    "MemberReport",
    "OUTCOME_COMPLETE",
    "OUTCOME_GATED",
    "OUTCOME_HALTED",
    "OUTCOME_ROLLED_BACK",
    "RED",
    "RolloutError",
    "RolloutOrchestrator",
    "RolloutPlan",
    "RolloutReport",
    "WaveReport",
    "check_machine",
    "default_rollout_path",
    "load_report",
    "replay_rollback",
    "rollout_corpus_cve",
    "run_remote_rollout",
    "save_report",
]

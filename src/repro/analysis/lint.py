"""Primary-module lint: what the apply-time machinery cannot possibly do.

Mirrors the resolver and planner in ``repro.core.apply`` statically:

- every undefined symbol of a primary must be satisfiable by one of the
  apply-time sources — run-pre solved values (anything the pre unit's
  relocations reference, plus its matched text functions), the update's
  own exports, the ksplice core module, or a *unique* kallsyms
  definition;
- an ambiguous kallsyms name is fatal only when run-pre matching cannot
  pin it down (the pre unit neither defines nor references it);
- relocation kinds must be ones the loader computes;
- a replaced function's pre text must decode (run-pre walks it
  instruction by instruction) and be large enough to hold the
  redirection jump the planner installs.

Anything flagged here aborts at apply time; the verdict is ``reject``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.analysis.model import VERDICT_REJECT, VERDICT_SAFE, Finding
from repro.arch.disassembler import iter_instructions
from repro.arch.info import DEFAULT_ARCH
from repro.errors import DisassemblyError
from repro.kbuild import BuildResult
from repro.objfile import RelocationType, SymbolKind

if TYPE_CHECKING:
    from repro.core.update import UnitUpdate, UpdatePack

#: symbols exported by the always-loaded ksplice core module
#: (``repro.core.shadow.KSPLICE_CORE_SOURCE``)
SHADOW_CORE_SYMBOLS = (
    "ksplice_shadow_attach",
    "ksplice_shadow_count",
    "ksplice_shadow_detach",
    "ksplice_shadow_get",
    "ksplice_shadow_has",
    "ksplice_shadow_keys",
    "ksplice_shadow_objs",
    "ksplice_shadow_set",
    "ksplice_shadow_vals",
)

SUPPORTED_RELOCATIONS = (RelocationType.ABS32, RelocationType.PC32)


def lint_pack(pack: "UpdatePack",
              run_build: Optional[BuildResult] = None,
              jump_size: int = DEFAULT_ARCH.jump_size) -> List[Finding]:
    """Lint every unit of the pack; deterministic finding order."""
    findings: List[Finding] = []
    update_exports: Set[str] = set()
    for uu in pack.units:
        for sym in uu.primary.defined_symbols():
            if not sym.is_local:
                update_exports.add(sym.name)

    run_defs: Dict[str, int] = {}
    if run_build is not None:
        for unit in sorted(run_build.objects):
            for sym in run_build.objects[unit].defined_symbols():
                run_defs[sym.name] = run_defs.get(sym.name, 0) + 1

    for uu in sorted(pack.units, key=lambda u: u.unit):
        findings.extend(_lint_unit(uu, update_exports, run_defs,
                                   run_build is not None, jump_size))
    return findings


def _lint_unit(uu: "UnitUpdate", update_exports: Set[str],
               run_defs: Dict[str, int], have_run_build: bool,
               jump_size: int) -> List[Finding]:
    findings: List[Finding] = []
    unit = uu.unit
    helper = uu.helper
    primary = uu.primary

    # what run-pre matching will have solved before the resolver runs
    runpre_solvable: Set[str] = set(helper.referenced_symbol_names())
    for section in helper.text_sections():
        for sym in helper.symbols_in_section(section.name):
            if sym.kind is SymbolKind.FUNC:
                runpre_solvable.add(sym.name)

    for section_name in sorted(primary.sections):
        for reloc in primary.sections[section_name].sorted_relocations():
            if reloc.type not in SUPPORTED_RELOCATIONS:
                findings.append(Finding(
                    analysis="lint", verdict=VERDICT_REJECT,
                    unit=unit, symbol=reloc.symbol,
                    detail="unsupported relocation kind %r at %s+%#x"
                           % (getattr(reloc.type, "value", reloc.type),
                              section_name, reloc.offset)))

    for fn in sorted(uu.changed_functions):
        sym = helper.find_symbol(fn)
        if sym is not None and sym.is_defined and 0 < sym.size < jump_size:
            findings.append(Finding(
                analysis="lint", verdict=VERDICT_REJECT,
                unit=unit, symbol=fn,
                detail="replaced function is only %d bytes; it cannot "
                       "hold the %d-byte redirection jump"
                       % (sym.size, jump_size)))
        section = helper.sections.get(".text.%s" % fn)
        if section is not None and not _decodes(section.data):
            findings.append(Finding(
                analysis="lint", verdict=VERDICT_REJECT,
                unit=unit, symbol=fn,
                detail="pre text does not disassemble; run-pre matching "
                       "cannot walk it instruction by instruction"))

    for sym in sorted(primary.undefined_symbols(), key=lambda s: s.name):
        name = sym.name
        if (name in runpre_solvable or name in update_exports
                or name in SHADOW_CORE_SYMBOLS):
            continue
        if not have_run_build:
            continue  # cannot judge kallsyms without the run build
        count = run_defs.get(name, 0)
        if count == 0:
            findings.append(Finding(
                analysis="lint", verdict=VERDICT_REJECT,
                unit=unit, symbol=name,
                detail="unresolvable symbol: not defined by the update, "
                       "the core module, or the running kernel"))
        elif count > 1:
            findings.append(Finding(
                analysis="lint", verdict=VERDICT_REJECT,
                unit=unit, symbol=name,
                detail="ambiguous symbol: %d definitions in the running "
                       "kernel and the pre unit neither defines nor "
                       "references it, so run-pre matching cannot pick "
                       "one" % count))

    if have_run_build:
        ambiguous = sorted(
            {reloc.symbol
             for section in primary.sections.values()
             for reloc in section.relocations
             if run_defs.get(reloc.symbol, 0) > 1
             and reloc.symbol in runpre_solvable})
        for name in ambiguous:
            findings.append(Finding(
                analysis="lint", verdict=VERDICT_SAFE,
                unit=unit, symbol=name,
                detail="symbol name has %d candidate definitions in the "
                       "running kernel; run-pre matching disambiguates "
                       "by byte comparison" % run_defs[name]))
    return findings


def _decodes(data: bytes) -> bool:
    try:
        for _instr in iter_instructions(data):
            pass
    except DisassemblyError:
        return False
    return True

"""The combined analyzer: one report from four analyses plus proofs.

``analyze_update`` is what the ``analyze`` stage of ksplice-create
calls, after differencing and before the pack is returned.  It is a
pure function of the pack, the per-unit diffs and objects, and
(optionally) the run kernel's build; it never mutates its inputs and
raises nothing — rejection is a verdict, not an exception, so the
caller decides whether a ``reject`` stops the pipeline.

The four heuristic analyses (data layout, init-only writers,
quiescence, lint) produce the findings; the abstract-interpretation
engine (:mod:`repro.analysis.absint`) then re-derives the machine
facts behind them — ABI summaries, hunk equivalence, pointer-escape
and sleep-path witnesses, data-image diffs — attaching
:class:`~repro.analysis.model.Evidence` records and, where the proof
contradicts the heuristic (a resized symbol nothing points into),
downgrading the finding.  ``absint=False`` skips the proof engine
(used for benchmarking the heuristic baseline).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.absint.engine import run_absint
from repro.analysis.callgraph import build_call_graph, format_node
from repro.analysis.datalayout import (
    analyze_data_layout,
    analyze_init_only_writers,
)
from repro.analysis.lint import lint_pack
from repro.analysis.model import AnalysisReport, Finding
from repro.analysis.quiescence import analyze_quiescence
from repro.arch.info import DEFAULT_ARCH
from repro.kbuild import BuildResult
from repro.objfile import ObjectFile
from repro.pipeline import Trace

if TYPE_CHECKING:
    from repro.core.objdiff import UnitDiff
    from repro.core.update import UpdatePack

#: mirrors ``KspliceCore``'s default bounded stack-check retries
DEFAULT_STACK_CHECK_RETRIES = 5


def analyze_update(pack: "UpdatePack",
                   unit_diffs: Dict[str, "UnitDiff"],
                   pre_objects: Dict[str, ObjectFile],
                   post_objects: Dict[str, ObjectFile],
                   run_build: Optional[BuildResult] = None,
                   stack_check_retries: int = DEFAULT_STACK_CHECK_RETRIES,
                   jump_size: int = DEFAULT_ARCH.jump_size,
                   absint: bool = True,
                   trace: Optional[Trace] = None,
                   ) -> AnalysisReport:
    """Classify one update before any machine is touched."""
    report = AnalysisReport(
        hooks_present=any(diff.has_hooks for diff in unit_diffs.values()),
        run_build_analyzed=run_build is not None,
    )
    for unit in sorted(unit_diffs):
        diff = unit_diffs[unit]
        if diff.changed_functions:
            report.patched_functions[unit] = sorted(diff.changed_functions)
        if diff.new_functions:
            report.new_functions[unit] = sorted(diff.new_functions)

    graph = build_call_graph(run_build) if run_build is not None else None
    if graph is not None:
        patched_nodes: List[Tuple[str, str]] = []
        for unit, fns in sorted(report.patched_functions.items()):
            for fn in fns:
                key = format_node((unit, fn))
                node = graph.node_for(unit, fn)
                if node is None:
                    report.references[key] = []
                    continue
                patched_nodes.append(node)
                report.references[key] = graph.references_of(node)
                hosts = graph.inline_hosts.get(node, set())
                if hosts:
                    report.inlined_copies[key] = sorted(
                        format_node(host) for host in hosts)
        report.caller_closure = sorted(
            format_node(node)
            for node in graph.caller_closure(patched_nodes))

    findings: List[Finding] = []
    findings.extend(analyze_data_layout(unit_diffs, pre_objects,
                                        post_objects))
    if graph is not None:
        findings.extend(analyze_init_only_writers(graph, unit_diffs,
                                                  pre_objects,
                                                  post_objects))
    findings.extend(analyze_quiescence(graph, unit_diffs, pre_objects,
                                       stack_check_retries))
    findings.extend(lint_pack(pack, run_build=run_build,
                              jump_size=jump_size))

    if absint:
        stage = trace.stage("absint") if trace is not None \
            else nullcontext()
        with stage as rep:
            findings, evidence = run_absint(
                unit_diffs, pre_objects, post_objects, run_build,
                graph, findings)
            report.evidence = evidence
            if rep is not None:
                rep.counters["evidence"] = len(evidence)
                rep.counters["proof_sites"] = sum(
                    len(ev.sites) for ev in evidence)

    report.extend(findings)
    return report

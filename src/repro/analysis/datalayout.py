"""Data-layout and data-semantics analysis (§3.4 of the paper).

Three signals, each mapped to a verdict:

- a **persistent-data image change** (initializer edits, removed data,
  rodata changes): applying replacement code alone leaves the running
  kernel's copy stale — ``needs-hooks``;
- a **resized data section** — the closest object-level analog of
  adding a field to a struct: the live object cannot hold the new
  layout, so the new state needs shadow storage (or a transform hook)
  — ``needs-shadow``;
- **shadow-API adoption**: the replacement code starts calling the
  shadow data-structure API the pre code never used, i.e. the patch
  depends on per-object state the running kernel does not have —
  ``needs-shadow``;
- an **init-only data writer**: a changed function that initializes
  persistent data but is reachable solely from the boot path.  Its
  fixed code will never run again in the live kernel, so replacing it
  cannot repair the state it wrote during boot — ``needs-hooks``.
  This is exactly the Table-1 shape: the original patch edits an
  ``*_init`` function's fill values, and only hook code can fix the
  already-initialized state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from repro.analysis.callgraph import CallGraph
from repro.analysis.model import (
    VERDICT_NEEDS_HOOKS,
    VERDICT_NEEDS_SHADOW,
    VERDICT_SAFE,
    Finding,
)
from repro.objfile import ObjectFile, SectionKind, SymbolKind

if TYPE_CHECKING:
    from repro.core.objdiff import UnitDiff

#: the shadow-structure API exported by the ksplice core module
#: (see ``repro.core.shadow.KSPLICE_CORE_SOURCE``)
SHADOW_API = (
    "ksplice_shadow_attach",
    "ksplice_shadow_detach",
    "ksplice_shadow_get",
    "ksplice_shadow_has",
    "ksplice_shadow_set",
)


def _strip_data_prefix(section_name: str) -> str:
    for prefix in (".data.", ".bss.", ".rodata."):
        if section_name.startswith(prefix):
            return section_name[len(prefix):]
    return section_name


def analyze_data_layout(unit_diffs: Dict[str, "UnitDiff"],
                        pre_objects: Dict[str, ObjectFile],
                        post_objects: Dict[str, ObjectFile]) -> List[Finding]:
    """Persistent-data, layout, and shadow-API findings per unit."""
    findings: List[Finding] = []
    for unit in sorted(unit_diffs):
        diff = unit_diffs[unit]
        resized = set(diff.resized_data)
        for section_name in diff.persistent_data_sections():
            symbol = _strip_data_prefix(section_name)
            if section_name.startswith(".rodata"):
                detail = ("read-only data image changed; the running "
                          "kernel's copy must be rewritten by hook code")
            else:
                detail = ("persistent data initializer changed; applying "
                          "the code alone leaves live state stale — "
                          "supply transform hook code")
            findings.append(Finding(analysis="data-layout",
                                    verdict=VERDICT_NEEDS_HOOKS,
                                    unit=unit, symbol=symbol,
                                    detail=detail))
            if symbol in resized:
                pre_size = _section_size(pre_objects.get(unit),
                                         section_name)
                post_size = _section_size(post_objects.get(unit),
                                          section_name)
                findings.append(Finding(
                    analysis="data-layout",
                    verdict=VERDICT_NEEDS_SHADOW,
                    unit=unit, symbol=symbol,
                    detail="data layout resized (%d -> %d bytes, the "
                           "struct-growth analog); the live object cannot "
                           "hold the new fields — use shadow storage"
                           % (pre_size, post_size)))
        findings.extend(_shadow_api_findings(unit, pre_objects.get(unit),
                                             post_objects.get(unit)))
        if diff.has_hooks:
            detail = "transform hooks supplied: %s" \
                % ", ".join(sorted(diff.hook_sections))
            if not (diff.has_code_changes or diff.changes_persistent_data):
                detail = "hook-only unit (no code or data changes); " + detail
            findings.append(Finding(analysis="data-layout",
                                    verdict=VERDICT_SAFE,
                                    unit=unit, detail=detail))
    return findings


def _section_size(obj: "ObjectFile | None", section_name: str) -> int:
    if obj is None:
        return 0
    section = obj.sections.get(section_name)
    return section.size if section is not None else 0


def _shadow_api_findings(unit: str, pre: "ObjectFile | None",
                         post: "ObjectFile | None") -> List[Finding]:
    if post is None:
        return []
    pre_refs: Set[str] = set(pre.referenced_symbol_names()) if pre else set()
    new_refs = set(post.referenced_symbol_names()) - pre_refs
    return [Finding(analysis="data-layout",
                    verdict=VERDICT_NEEDS_SHADOW,
                    unit=unit, symbol=name,
                    detail="replacement code adopts the shadow data API "
                           "(%s): it depends on per-object state the "
                           "running kernel does not carry" % name)
            for name in sorted(new_refs & set(SHADOW_API))]


def analyze_init_only_writers(graph: CallGraph,
                              unit_diffs: Dict[str, "UnitDiff"],
                              pre_objects: Dict[str, ObjectFile],
                              post_objects: Dict[str, ObjectFile],
                              ) -> List[Finding]:
    """Changed functions that write persistent data but only run at boot."""
    findings: List[Finding] = []
    for unit in sorted(unit_diffs):
        diff = unit_diffs[unit]
        for fn in sorted(diff.changed_functions):
            node = graph.node_for(unit, fn)
            if node is None or not graph.is_init_only(node):
                continue
            data_refs = _persistent_data_refs(post_objects.get(unit),
                                              pre_objects.get(unit), fn)
            if not data_refs:
                continue
            findings.append(Finding(
                analysis="data-layout",
                verdict=VERDICT_NEEDS_HOOKS,
                unit=unit, symbol=fn,
                detail="changed function initializes persistent data "
                       "(%s) but is reachable only from the boot path; "
                       "the live kernel will never re-run it — supply "
                       "hook code to fix the already-initialized state"
                       % ", ".join(data_refs)))
    return findings


def _persistent_data_refs(post: "ObjectFile | None",
                          pre: "ObjectFile | None", fn: str) -> List[str]:
    """Data symbols the (function-sections) post text of ``fn`` touches."""
    if post is None:
        return []
    section = post.sections.get(".text.%s" % fn)
    if section is None:
        return []
    refs: Set[str] = set()
    for reloc in section.sorted_relocations():
        for obj in (post, pre):
            if obj is None:
                continue
            symbol = obj.find_symbol(reloc.symbol)
            if symbol is None or not symbol.is_defined:
                continue
            if symbol.kind is not SymbolKind.OBJECT:
                break
            defining = obj.sections.get(symbol.section or "")
            if defining is not None and defining.kind in (
                    SectionKind.DATA, SectionKind.BSS, SectionKind.RODATA):
                refs.add(reloc.symbol)
            break
    return sorted(refs)

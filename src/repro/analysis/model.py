"""Verdicts, findings, and the analysis report.

A *verdict* is the analyzer's one-word judgement of an update:

``safe``
    Nothing statically objectionable; apply should succeed and the
    patch needs no custom code.
``needs-hooks``
    The patch changes the meaning or image of persistent data; applying
    the code alone leaves live state semantically stale (§3.4 of the
    paper).  Hook code must transform existing state.
``needs-shadow``
    The replacement code depends on per-object state that does not
    exist in the running kernel — shadow data structures (DynAMOS-style)
    must carry it.
``quiesce-risk``
    A patched function can sit on a sleeping thread's stack
    indefinitely, so the conservative stack check is predicted to
    exhaust its retries inside stop_machine.
``reject``
    The update cannot be applied at all (unresolvable symbols,
    unsupported relocations, functions too small to redirect).

Verdicts are ordered by severity; a report's overall verdict is the
most severe verdict among its findings.  Everything here is a plain
picklable dataclass (reports ride on ``CveResult`` through worker
processes) with deterministic, sorted JSON rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Bumped whenever a change to the analyzer can alter verdicts or
#: evidence; stamped into every analysis cache key so a warm disk
#: cache can never serve a stale verdict across analyzer upgrades.
#: "1" was the PR 3 heuristic analyzer; "2" added the abstract
#: interpreter and evidence records.
ANALYZER_VERSION = "2"

VERDICT_SAFE = "safe"
VERDICT_NEEDS_HOOKS = "needs-hooks"
VERDICT_NEEDS_SHADOW = "needs-shadow"
VERDICT_QUIESCE_RISK = "quiesce-risk"
VERDICT_REJECT = "reject"

#: most severe first; the report verdict is the worst finding verdict
VERDICT_SEVERITY: Tuple[str, ...] = (
    VERDICT_REJECT,
    VERDICT_NEEDS_HOOKS,
    VERDICT_NEEDS_SHADOW,
    VERDICT_QUIESCE_RISK,
    VERDICT_SAFE,
)

#: ``repro analyze`` exit codes (0 clean / 2 custom code / 3 reject)
VERDICT_EXIT_CODES: Dict[str, int] = {
    VERDICT_SAFE: 0,
    VERDICT_NEEDS_HOOKS: 2,
    VERDICT_NEEDS_SHADOW: 2,
    VERDICT_QUIESCE_RISK: 2,
    VERDICT_REJECT: 3,
}


def worst_verdict(verdicts: List[str]) -> str:
    """The most severe verdict present (``safe`` when empty)."""
    for verdict in VERDICT_SEVERITY:
        if verdict in verdicts:
            return verdict
    return VERDICT_SAFE


@dataclass
class Finding:
    """One observation by one analysis.

    ``verdict`` is what this finding alone argues for; informational
    notes carry ``safe``.
    """

    analysis: str
    verdict: str
    detail: str
    unit: str = ""
    symbol: str = ""

    def sort_key(self) -> Tuple[int, str, str, str]:
        return (VERDICT_SEVERITY.index(self.verdict), self.analysis,
                self.unit, self.symbol)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "analysis": self.analysis,
            "detail": self.detail,
            "symbol": self.symbol,
            "unit": self.unit,
            "verdict": self.verdict,
        }

    def render(self) -> str:
        where = ":".join(p for p in (self.unit, self.symbol) if p)
        prefix = "[%s] %s" % (self.verdict, self.analysis)
        if where:
            prefix += " (%s)" % where
        return "%s: %s" % (prefix, self.detail)


#: evidence kinds (see :mod:`repro.analysis.absint`)
EVIDENCE_ABI = "abi"
EVIDENCE_EQUIVALENCE = "equivalence"
EVIDENCE_ESCAPE = "escape"
EVIDENCE_SHADOW_API = "shadow-api"
EVIDENCE_DATA_IMAGE = "data-image"
EVIDENCE_SLEEP_PATH = "sleep-path"

#: which evidence kinds prove which non-safe finding verdicts
PROOF_KINDS: Dict[str, Tuple[str, ...]] = {
    VERDICT_NEEDS_HOOKS: (EVIDENCE_DATA_IMAGE,),
    VERDICT_NEEDS_SHADOW: (EVIDENCE_ESCAPE, EVIDENCE_SHADOW_API),
    VERDICT_QUIESCE_RISK: (EVIDENCE_SLEEP_PATH,),
}


@dataclass
class Evidence:
    """One machine-checkable witness attached to the report.

    ``sites`` are concrete program points (``unit:function+0xNN:
    what``); ``facts`` are the checked numbers (sizes, arities, match
    counts) in JSON-safe types.  A verdict backed by evidence is
    *proven* — the control plane can gate on it without trusting the
    label (see :meth:`AnalysisReport.is_proven`).
    """

    kind: str
    unit: str = ""
    symbol: str = ""
    detail: str = ""
    sites: List[str] = field(default_factory=list)
    facts: Dict[str, Any] = field(default_factory=dict)

    def sort_key(self) -> Tuple[str, str, str, str]:
        return (self.kind, self.unit, self.symbol, self.detail)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "unit": self.unit,
            "symbol": self.symbol,
            "detail": self.detail,
            "sites": sorted(self.sites),
            "facts": {k: self.facts[k] for k in sorted(self.facts)},
        }

    def render(self) -> str:
        where = ":".join(p for p in (self.unit, self.symbol) if p)
        text = "<%s>%s %s" % (self.kind,
                              " (%s)" % where if where else "",
                              self.detail)
        if self.sites:
            text += " [%d site%s]" % (len(self.sites),
                                      "s" if len(self.sites) != 1
                                      else "")
        return text


@dataclass
class AnalysisReport:
    """The combined static judgement of one update pack."""

    verdict: str = VERDICT_SAFE
    findings: List[Finding] = field(default_factory=list)
    #: unit -> replaced (changed) function names
    patched_functions: Dict[str, List[str]] = field(default_factory=dict)
    #: unit -> functions the patch introduces
    new_functions: Dict[str, List[str]] = field(default_factory=dict)
    #: patched function -> "unit:function" references in the run kernel
    #: (direct calls, data references, and inlined-copy hosts)
    references: Dict[str, List[str]] = field(default_factory=dict)
    #: transitive caller closure of the patched functions, "unit:function"
    caller_closure: List[str] = field(default_factory=list)
    #: patched function -> run-kernel functions holding an inlined copy
    inlined_copies: Dict[str, List[str]] = field(default_factory=dict)
    hooks_present: bool = False
    #: True when the run kernel's build was available for the call-graph
    #: and quiescence analyses
    run_build_analyzed: bool = False
    #: machine-checkable witnesses from the abstract interpreter
    evidence: List[Evidence] = field(default_factory=list)
    #: analyzer version that produced this report (cache-staleness
    #: stamp; see :data:`ANALYZER_VERSION`)
    analyzer_version: str = ANALYZER_VERSION

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)
        self.verdict = worst_verdict([self.verdict, finding.verdict])

    def extend(self, findings: List[Finding]) -> None:
        for finding in findings:
            self.add(finding)

    def findings_for(self, verdict: str) -> List[Finding]:
        return [f for f in self.findings if f.verdict == verdict]

    def verdict_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.verdict] = counts.get(finding.verdict, 0) + 1
        return counts

    def exit_code(self) -> int:
        return VERDICT_EXIT_CODES[self.verdict]

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings, key=Finding.sort_key)

    def sorted_evidence(self) -> List[Evidence]:
        return sorted(self.evidence, key=Evidence.sort_key)

    def evidence_for(self, kind: str) -> List[Evidence]:
        return [e for e in self.evidence if e.kind == kind]

    def is_proven(self) -> bool:
        """Does machine-checkable evidence back this report's verdict?

        A report is proven when the run kernel's build was analyzed,
        every patched function carries an ABI summary and a
        hunk-equivalence witness, and every non-safe finding (reject
        aside — a reject's lint facts are their own witness) is backed
        by at least one evidence record of the matching kind *with
        concrete sites*.  Unproven reports are refused by
        ``repro channel publish`` unless forced.
        """
        if not self.run_build_analyzed:
            return False
        witnessed = {
            kind: [e for e in self.evidence
                   if e.kind == kind and (e.sites or e.facts)]
            for kind in {e.kind for e in self.evidence}}
        for unit, fns in self.patched_functions.items():
            for fn in fns:
                for required in (EVIDENCE_ABI, EVIDENCE_EQUIVALENCE):
                    if not any(e.unit == unit and e.symbol == fn
                               for e in witnessed.get(required, [])):
                        return False
        for finding in self.findings:
            kinds = PROOF_KINDS.get(finding.verdict)
            if kinds is None:
                continue
            matches = [e for kind in kinds
                       for e in witnessed.get(kind, [])]
            if not any(e.sites for e in matches):
                return False
        return True

    def to_json_dict(self) -> Dict[str, Any]:
        """Deterministic JSON form: every list sorted, keys sortable."""
        return {
            "verdict": self.verdict,
            "exit_code": self.exit_code(),
            "analyzer_version": self.analyzer_version,
            "proven": self.is_proven(),
            "evidence": [e.to_json_dict()
                         for e in self.sorted_evidence()],
            "findings": [f.to_json_dict() for f in self.sorted_findings()],
            "patched_functions": {u: sorted(fns) for u, fns
                                  in self.patched_functions.items()},
            "new_functions": {u: sorted(fns) for u, fns
                              in self.new_functions.items()},
            "references": {fn: sorted(refs) for fn, refs
                           in self.references.items()},
            "caller_closure": sorted(self.caller_closure),
            "inlined_copies": {fn: sorted(hosts) for fn, hosts
                               in self.inlined_copies.items()},
            "hooks_present": self.hooks_present,
            "run_build_analyzed": self.run_build_analyzed,
        }

    def render(self) -> str:
        lines = ["verdict: %s" % self.verdict]
        for unit in sorted(self.patched_functions):
            fns = self.patched_functions[unit]
            lines.append("  replaces %-24s %s"
                         % (unit, ", ".join(sorted(fns)) or "(new code only)"))
        for unit in sorted(self.new_functions):
            fns = self.new_functions[unit]
            if fns:
                lines.append("  adds     %-24s %s"
                             % (unit, ", ".join(sorted(fns))))
        if self.hooks_present:
            lines.append("  hook code supplied")
        for fn in sorted(self.references):
            refs = self.references[fn]
            if refs:
                lines.append("  %s referenced by: %s"
                             % (fn, ", ".join(sorted(refs))))
        for fn in sorted(self.inlined_copies):
            hosts = self.inlined_copies[fn]
            if hosts:
                lines.append("  %s inlined into: %s"
                             % (fn, ", ".join(sorted(hosts))))
        if self.caller_closure:
            lines.append("  caller closure: %s"
                         % ", ".join(sorted(self.caller_closure)))
        if not self.run_build_analyzed:
            lines.append("  (run kernel build unavailable: call-graph and "
                         "quiescence analyses limited to the patched unit)")
        if self.findings:
            lines.append("findings:")
            for finding in self.sorted_findings():
                lines.append("  " + finding.render())
        else:
            lines.append("findings: none")
        if self.evidence:
            lines.append("evidence (%s):"
                         % ("verdict proven" if self.is_proven()
                            else "incomplete"))
            for ev in self.sorted_evidence():
                lines.append("  " + ev.render())
        return "\n".join(lines)

"""Static patch-safety analysis (pre-stop_machine verdicts).

Four analyses over the pre/post objects and (when available) the
running kernel's build, feeding one :class:`AnalysisReport`:

- a relocation call graph (:mod:`repro.analysis.callgraph`) computing
  who calls or references each patched function, inlined copies
  included;
- a data-layout/semantics diff (:mod:`repro.analysis.datalayout`)
  mapping persistent-data and shadow-API changes to verdicts;
- a quiescence-risk walk (:mod:`repro.analysis.quiescence`) predicting
  stack-check retry exhaustion before stop_machine runs;
- a primary-module lint (:mod:`repro.analysis.lint`) for symbols the
  apply-time resolver cannot possibly satisfy;
- an abstract-interpretation proof engine
  (:mod:`repro.analysis.absint`) backing every verdict with
  machine-checkable :class:`Evidence` — ABI/stack dataflow, hunk
  equivalence, pointer-escape, data-image, and sleep-path witnesses.

The analyzer runs as the ``analyze`` stage of ksplice-create and its
verdict rides on ``CveResult``; the evaluation engine cross-checks the
verdicts against the dynamic apply outcomes corpus-wide, and the
control plane refuses to publish unproven updates.
"""

from repro.analysis.analyzer import analyze_update
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.model import (
    ANALYZER_VERSION,
    PROOF_KINDS,
    VERDICT_EXIT_CODES,
    VERDICT_NEEDS_HOOKS,
    VERDICT_NEEDS_SHADOW,
    VERDICT_QUIESCE_RISK,
    VERDICT_REJECT,
    VERDICT_SAFE,
    VERDICT_SEVERITY,
    AnalysisReport,
    Evidence,
    Finding,
)

__all__ = [
    "ANALYZER_VERSION",
    "AnalysisReport",
    "CallGraph",
    "Evidence",
    "Finding",
    "PROOF_KINDS",
    "VERDICT_EXIT_CODES",
    "VERDICT_NEEDS_HOOKS",
    "VERDICT_NEEDS_SHADOW",
    "VERDICT_QUIESCE_RISK",
    "VERDICT_REJECT",
    "VERDICT_SAFE",
    "VERDICT_SEVERITY",
    "analyze_update",
    "build_call_graph",
]

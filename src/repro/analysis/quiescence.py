"""Quiescence-risk analysis: predicting stack-check exhaustion.

The apply machinery captures every thread inside ``stop_machine`` and
refuses to patch while any captured stack holds an address inside a
replaced function, retrying a bounded number of times (§3.2).  A thread
parked on a sleep instruction (``sched``/``hlt``) does not drain
between retries — so if a patched function can *be* the sleeper, or can
sit below one on a call chain, every retry is predicted to see the same
stack and the update aborts with retry exhaustion before any code is
patched.

The walk uses direct-call edges only (see
:mod:`repro.analysis.callgraph`): a function's return address lands on
a stack exactly when it appears in an active call chain.  Data
references (function pointers in tables) make a function *reachable*
but do not pin its address ranges onto a sleeping stack by themselves.
Without the run kernel's build the analysis degrades to scanning the
patched functions' own pre text for sleep instructions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.analysis.callgraph import CallGraph, text_sleeps
from repro.analysis.model import VERDICT_QUIESCE_RISK, Finding
from repro.objfile import ObjectFile

if TYPE_CHECKING:
    from repro.core.objdiff import UnitDiff


def analyze_quiescence(graph: Optional[CallGraph],
                       unit_diffs: Dict[str, "UnitDiff"],
                       pre_objects: Dict[str, ObjectFile],
                       stack_check_retries: int = 5) -> List[Finding]:
    """One finding per patched function that can sleep or reach sleep."""
    findings: List[Finding] = []
    for unit in sorted(unit_diffs):
        diff = unit_diffs[unit]
        for fn in sorted(diff.changed_functions):
            finding = _check_function(graph, pre_objects.get(unit), unit,
                                      fn, stack_check_retries)
            if finding is not None:
                findings.append(finding)
    return findings


def _check_function(graph: Optional[CallGraph],
                    pre: Optional[ObjectFile], unit: str, fn: str,
                    retries: int) -> Optional[Finding]:
    node = graph.node_for(unit, fn) if graph is not None else None
    if node is not None and graph is not None:
        path = graph.sleep_path(node)
        if path is None:
            return None
        if len(path) == 1:
            detail = ("patched function executes a sleep instruction; a "
                      "parked thread's program counter can sit inside it "
                      "indefinitely, so all %d stack-check attempts are "
                      "predicted to fail" % retries)
        else:
            chain = " -> ".join(name for _unit, name in path)
            detail = ("patched function can sleep through %s; its return "
                      "address stays on the sleeping thread's stack "
                      "across all %d stop_machine retries"
                      % (chain, retries))
        return Finding(analysis="quiescence", verdict=VERDICT_QUIESCE_RISK,
                       unit=unit, symbol=fn, detail=detail)
    # degraded mode: no run-kernel graph — scan the pre text itself
    if pre is None:
        return None
    section = pre.sections.get(".text.%s" % fn)
    if section is None or not text_sleeps(section.data):
        return None
    return Finding(analysis="quiescence", verdict=VERDICT_QUIESCE_RISK,
                   unit=unit, symbol=fn,
                   detail="patched function executes a sleep instruction; "
                          "a parked thread's program counter can sit inside "
                          "it indefinitely, so all %d stack-check attempts "
                          "are predicted to fail" % retries)

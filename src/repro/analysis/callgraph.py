"""Relocation call graph over the run kernel's object units.

Nodes are ``(unit, function)`` pairs.  Edges come from two places:
*text-section* relocations whose target resolves to a defined function
(cross-unit calls and code-taken addresses), and decoded ``call``
instructions whose displacement was resolved at assembly time — the
run build is a merged-section build, so same-unit calls leave no
relocation behind, only a fixed offset into the shared text section.
Either way the edge is attributed to the function whose extent contains
the call site.  Data-section relocations to
functions (e.g. the syscall table's ``.word`` entries) are kept apart
in :attr:`CallGraph.data_referenced`: they make a function reachable
from arbitrary threads at run time but are not stack-visible call
chains, and conflating the two would poison the quiescence analysis.

Inlined-copy propagation rides on the compiler's inline metadata
(:class:`repro.compiler.inliner.InlineReport`): a function hosting an
inlined copy of a callee is recorded as an inline host — effectively a
caller whose call sites left no relocation behind.  Sleep points are
functions whose compiled text contains a ``sched`` or ``hlt``
instruction (the MiniC ``__sched()``/``__hlt`` builtins lower to
these); anything that can reach one by direct calls can sit on a
sleeping thread's stack across stop_machine retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.arch.disassembler import iter_instructions
from repro.errors import DisassemblyError
from repro.kbuild import BuildResult
from repro.objfile import ObjectFile, Section, SectionKind, SymbolKind

#: mnemonics that park the executing thread (see ``repro.arch.isa``)
SLEEP_MNEMONICS = ("sched", "hlt")

#: functions the boot sequence calls directly, outside any call chain
BOOT_ENTRYPOINTS = ("kernel_init",)

Node = Tuple[str, str]


def format_node(node: Node) -> str:
    return "%s:%s" % node


@dataclass
class CallGraph:
    """The run kernel's inter-procedural reference structure."""

    #: caller node -> callee nodes (text-relocation call edges)
    calls: Dict[Node, Set[Node]] = field(default_factory=dict)
    #: callee node -> caller nodes (reverse of ``calls``)
    callers: Dict[Node, Set[Node]] = field(default_factory=dict)
    #: functions whose address a data-section relocation takes
    data_referenced: Set[Node] = field(default_factory=set)
    #: function node -> "unit:section" data sites referencing it
    data_ref_sites: Dict[Node, Set[str]] = field(default_factory=dict)
    #: functions whose own text contains a sleep instruction
    sleep_points: Set[Node] = field(default_factory=set)
    #: (caller, callee) -> call-site offsets inside the caller's section
    call_sites: Dict[Tuple[Node, Node], Set[int]] = field(
        default_factory=dict)
    #: sleeping node -> offsets of its sched/hlt instructions
    sleep_sites: Dict[Node, Set[int]] = field(default_factory=dict)
    #: (unit, callee name) -> nodes holding an inlined copy of callee
    inline_hosts: Dict[Node, Set[Node]] = field(default_factory=dict)
    #: function name -> defining nodes (all bindings)
    definitions: Dict[str, List[Node]] = field(default_factory=dict)

    def node_for(self, unit: str, name: str) -> Optional[Node]:
        node = (unit, name)
        return node if node in set(self.definitions.get(name, [])) else None

    def predecessors(self, node: Node) -> Set[Node]:
        """Callers plus inline hosts — everything whose execution can
        put ``node``'s code on a stack or transfer into it."""
        preds = set(self.callers.get(node, ()))
        preds |= self.inline_hosts.get(node, set())
        preds.discard(node)
        return preds

    def caller_closure(self, roots: Iterable[Node]) -> Set[Node]:
        """Transitive callers (inline hosts included) of ``roots``,
        excluding the roots themselves."""
        seen: Set[Node] = set()
        frontier: List[Node] = sorted(set(roots))
        root_set = set(frontier)
        while frontier:
            node = frontier.pop()
            for pred in sorted(self.predecessors(node)):
                if pred not in seen and pred not in root_set:
                    seen.add(pred)
                    frontier.append(pred)
        return seen

    def sleep_path(self, node: Node) -> Optional[List[Node]]:
        """Shortest direct-call chain from ``node`` to a sleep point
        (``[node]`` itself when its own text sleeps), else None."""
        if node in self.sleep_points:
            return [node]
        parents: Dict[Node, Node] = {}
        seen: Set[Node] = {node}
        frontier: List[Node] = [node]
        while frontier:
            next_frontier: List[Node] = []
            for current in frontier:
                for callee in sorted(self.calls.get(current, ())):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    parents[callee] = current
                    if callee in self.sleep_points:
                        path = [callee]
                        while path[-1] != node:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    next_frontier.append(callee)
            frontier = next_frontier
        return None

    def is_init_only(self, node: Node,
                     entrypoints: Tuple[str, ...] = BOOT_ENTRYPOINTS) -> bool:
        """True when ``node`` is reachable *only* from the boot path:
        never address-taken by data, has at least one caller, and every
        call chain leading to it starts at a boot entry point.  Such a
        function already ran during boot and will never run again — so
        replacing its code cannot re-fix the state it initialized."""
        if node in self.data_referenced:
            return False
        closure = self.caller_closure([node])
        if not closure:
            return False
        if any(caller in self.data_referenced for caller in closure):
            return False
        roots = [caller for caller in closure
                 if not self.predecessors(caller)]
        return bool(roots) and all(name in entrypoints
                                   for _unit, name in roots)

    def references_of(self, node: Node) -> List[str]:
        """Everything referencing ``node``, rendered deterministically:
        call-edge callers and inline hosts as ``unit:function``, data
        reference sites as ``unit:section``."""
        refs = {format_node(p) for p in self.predecessors(node)}
        refs |= self.data_ref_sites.get(node, set())
        return sorted(refs)


def _function_extents(obj: ObjectFile,
                      section: Section) -> List[Tuple[int, int, str]]:
    """``(start, end, name)`` per function symbol, covering the whole
    section: a function's extent runs to the next function's start, so
    inter-function alignment padding is attributed to its predecessor
    (harmless — padding is nops)."""
    funcs = sorted(
        ((sym.value, sym.name) for sym in obj.symbols_in_section(section.name)
         if sym.kind is SymbolKind.FUNC),
        key=lambda item: (item[0], item[1]))
    extents: List[Tuple[int, int, str]] = []
    for index, (start, name) in enumerate(funcs):
        end = funcs[index + 1][0] if index + 1 < len(funcs) \
            else section.size
        extents.append((start, end, name))
    return extents


def _containing(extents: List[Tuple[int, int, str]],
                offset: int) -> Optional[str]:
    for start, end, name in extents:
        if start <= offset < end:
            return name
    return None


def build_call_graph(build: BuildResult) -> CallGraph:
    """Construct the graph from every object of the run kernel's build."""
    graph = CallGraph()
    local_funcs: Dict[str, Set[str]] = {}
    global_funcs: Dict[str, List[Node]] = {}
    extents: Dict[Tuple[str, str], List[Tuple[int, int, str]]] = {}

    for unit in sorted(build.objects):
        obj = build.objects[unit]
        local_funcs[unit] = set()
        for sym in obj.defined_symbols():
            if sym.kind is not SymbolKind.FUNC:
                continue
            graph.definitions.setdefault(sym.name, []).append((unit, sym.name))
            local_funcs[unit].add(sym.name)
            if not sym.is_local:
                global_funcs.setdefault(sym.name, []).append((unit, sym.name))
        for section in obj.text_sections():
            section_extents = _function_extents(obj, section)
            extents[(unit, section.name)] = section_extents
            _scan_text(graph, unit, section, section_extents)

    def resolve(unit: str, name: str) -> Optional[Node]:
        if name in local_funcs.get(unit, ()):
            return (unit, name)
        targets = global_funcs.get(name, [])
        return targets[0] if len(targets) == 1 else None

    for unit in sorted(build.objects):
        obj = build.objects[unit]
        for section_name in sorted(obj.sections):
            section = obj.sections[section_name]
            for reloc in section.sorted_relocations():
                target = resolve(unit, reloc.symbol)
                if target is None:
                    continue
                if section.kind is SectionKind.TEXT:
                    caller_name = _containing(
                        extents.get((unit, section_name), []), reloc.offset)
                    if caller_name is None:
                        continue
                    caller = (unit, caller_name)
                    if caller == target:
                        continue
                    graph.calls.setdefault(caller, set()).add(target)
                    graph.callers.setdefault(target, set()).add(caller)
                    graph.call_sites.setdefault(
                        (caller, target), set()).add(reloc.offset)
                else:
                    graph.data_referenced.add(target)
                    graph.data_ref_sites.setdefault(target, set()).add(
                        "%s:%s" % (unit, section_name))

    for unit in sorted(build.inline_reports):
        report = build.inline_reports[unit]
        for callee in sorted(report.inlined):
            for caller, _count in report.inlined[callee]:
                graph.inline_hosts.setdefault((unit, callee), set()).add(
                    (unit, caller))
    return graph


def _scan_text(graph: CallGraph, unit: str, section: Section,
               section_extents: List[Tuple[int, int, str]]) -> None:
    """One decode pass per text section: sleep points, plus the call
    edges the relocation walk cannot see — a merged build resolves
    same-unit calls at assembly time, so the only trace of those edges
    is the fixed displacement inside the ``call`` instruction."""
    try:
        for instr in iter_instructions(section.data):
            if instr.mnemonic in SLEEP_MNEMONICS:
                name = _containing(section_extents, instr.offset)
                if name is not None:
                    graph.sleep_points.add((unit, name))
                    graph.sleep_sites.setdefault(
                        (unit, name), set()).add(instr.offset)
                continue
            if instr.mnemonic != "call":
                continue
            field = instr.instruction.spec.pc_relative_operand_offset
            if field is None or \
                    section.has_relocation_at(instr.offset + field):
                continue  # relocated call: the relocation pass covers it
            target_offset = instr.offset + instr.length + \
                instr.instruction.operands[0]
            caller = _containing(section_extents, instr.offset)
            callee = _containing(section_extents, target_offset)
            if caller is None or callee is None or caller == callee:
                continue
            graph.calls.setdefault((unit, caller), set()).add((unit, callee))
            graph.callers.setdefault((unit, callee), set()).add(
                (unit, caller))
            graph.call_sites.setdefault(
                ((unit, caller), (unit, callee)), set()).add(instr.offset)
    except DisassemblyError:
        # Undecodable text (hand-written constants in code): treat the
        # rest of the section as opaque rather than failing the analysis.
        return


def text_sleeps(section_data: bytes) -> bool:
    """Does this (function-sections) text contain a sleep instruction?"""
    try:
        return any(instr.mnemonic in SLEEP_MNEMONICS
                   for instr in iter_instructions(section_data))
    except DisassemblyError:
        return False

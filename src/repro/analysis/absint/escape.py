"""Pointer-escape analysis for data-layout diffs.

``needs-shadow`` in the heuristic analyzer means "a data section's
layout differs".  This pass turns that into evidence: for every
resized or changed persistent data symbol it collects

* **escape witnesses** — instructions in the replacement code where a
  pointer into the symbol leaves the local frame (stored to memory,
  live on the stack at a call, returned in ``r0``), from the abstract
  interpreter's dataflow;
* **reference witnesses** — every run-kernel instruction whose
  relocation targets the symbol, and every data-section relocation
  embedding its address (a function-pointer-table-style anchor).

A resized symbol with *no* witnesses anywhere cannot have a live
pointer into it, so the ``needs-shadow`` finding is downgraded to an
informational ``safe`` note — the concrete payoff of running the
interpreter.  When witnesses exist they ride on the evidence record,
upgrading the verdict from "layout differs" to "layout differs *and
here is who holds pointers into it*".

Shadow-API adoption gets its own ``shadow-api`` evidence: the exact
call sites of ``ksplice_shadow_*`` the replacement introduces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.absint.interp import summarize_section_function
from repro.analysis.datalayout import SHADOW_API
from repro.analysis.model import (
    EVIDENCE_ESCAPE,
    EVIDENCE_SHADOW_API,
    VERDICT_NEEDS_SHADOW,
    VERDICT_SAFE,
    Evidence,
    Finding,
)
from repro.kbuild import BuildResult
from repro.objfile import ObjectFile, SectionKind


def _post_function_names(post_obj: ObjectFile) -> List[str]:
    return sorted(
        section.name[len(".text."):]
        for section in post_obj.text_sections()
        if section.name.startswith(".text."))


def _run_kernel_references(build: Optional[BuildResult],
                           symbol: str) -> Tuple[List[str], int]:
    """``unit:section+0xNN`` relocation sites targeting ``symbol``."""
    sites: List[str] = []
    data_anchors = 0
    if build is None:
        return sites, data_anchors
    for unit in sorted(build.objects):
        obj = build.objects[unit]
        for section_name in sorted(obj.sections):
            section = obj.sections[section_name]
            for reloc in section.sorted_relocations():
                if reloc.symbol != symbol:
                    continue
                what = "references" if section.kind is SectionKind.TEXT \
                    else "embeds the address of"
                if section.kind is not SectionKind.TEXT:
                    data_anchors += 1
                sites.append("%s:%s+0x%x: %s %s"
                             % (unit, section_name, reloc.offset,
                                what, symbol))
    return sites, data_anchors


def analyze_escapes(unit: str,
                    layout_symbols: Set[str],
                    post_obj: Optional[ObjectFile],
                    run_build: Optional[BuildResult],
                    ) -> Tuple[List[Evidence], Dict[str, bool]]:
    """Escape evidence per layout-changed symbol.

    Returns the evidence records plus ``symbol -> anything escapes``
    so the caller can downgrade witness-free ``needs-shadow``
    findings.
    """
    evidence: List[Evidence] = []
    escapes_seen: Dict[str, bool] = {}
    if not layout_symbols:
        return evidence, escapes_seen

    summaries = []
    if post_obj is not None:
        for fn in _post_function_names(post_obj):
            section = post_obj.sections.get(".text.%s" % fn)
            if section is not None:
                summaries.append((fn, summarize_section_function(
                    section, fn)))

    for symbol in sorted(layout_symbols):
        sites: List[str] = []
        escape_count = 0
        access_count = 0
        for fn, summary in summaries:
            for event in summary.escapes:
                if event.symbol == symbol:
                    escape_count += 1
                    sites.append("%s:%s+0x%x: %s — %s"
                                 % (unit, fn, event.offset,
                                    event.mnemonic, event.reason))
            for ret in summary.rets:
                if ret.returns_pointer_to == symbol:
                    escape_count += 1
                    sites.append("%s:%s+0x%x: ret — returns a "
                                 "pointer into %s"
                                 % (unit, fn, ret.offset, symbol))
            for event in summary.accesses:
                if event.symbol == symbol:
                    access_count += 1
                    sites.append("%s:%s+0x%x: %s %s %s"
                                 % (unit, fn, event.offset,
                                    event.mnemonic,
                                    "writes" if event.is_write
                                    else "reads", symbol))
        run_sites, data_anchors = _run_kernel_references(run_build,
                                                         symbol)
        sites.extend(run_sites)
        escaped = bool(escape_count or data_anchors or run_sites)
        escapes_seen[symbol] = escaped
        if escaped:
            detail = ("%d escape witness(es), %d direct access(es), "
                      "%d run-kernel reference(s) hold or can form "
                      "live pointers into the resized layout of %s"
                      % (escape_count, access_count, len(run_sites),
                         symbol))
        else:
            detail = ("no instruction in the replacement or the run "
                      "kernel creates, stores, or passes a pointer "
                      "into %s; nothing escapes, so plain code "
                      "replacement is layout-safe" % symbol)
        evidence.append(Evidence(
            kind=EVIDENCE_ESCAPE, unit=unit, symbol=symbol,
            detail=detail, sites=sites,
            facts={"escapes": escape_count,
                   "direct_accesses": access_count,
                   "run_kernel_references": len(run_sites),
                   "data_anchors": data_anchors,
                   "anything_escapes": escaped}))
    return evidence, escapes_seen


def shadow_api_evidence(unit: str,
                        pre_obj: Optional[ObjectFile],
                        post_obj: Optional[ObjectFile],
                        ) -> List[Evidence]:
    """Call sites of newly-adopted ``ksplice_shadow_*`` symbols."""
    if post_obj is None:
        return []
    pre_refs: Set[str] = set(pre_obj.referenced_symbol_names()) \
        if pre_obj is not None else set()
    adopted = sorted((set(post_obj.referenced_symbol_names())
                      - pre_refs) & set(SHADOW_API))
    if not adopted:
        return []
    evidence: List[Evidence] = []
    for api in adopted:
        sites: List[str] = []
        for section in post_obj.text_sections():
            fn = section.name[len(".text."):] \
                if section.name.startswith(".text.") else section.name
            for reloc in section.sorted_relocations():
                if reloc.symbol == api:
                    sites.append("%s:%s+0x%x: call %s"
                                 % (unit, fn, reloc.offset, api))
        evidence.append(Evidence(
            kind=EVIDENCE_SHADOW_API, unit=unit, symbol=api,
            detail="replacement code calls %s at %d site(s): it "
                   "depends on per-object shadow state the running "
                   "kernel does not carry" % (api, len(sites)),
            sites=sites, facts={"call_sites": len(sites)}))
    return evidence


def downgrade_unwitnessed_shadow(
        findings: List[Finding],
        escapes_seen: Dict[Tuple[str, str], bool]) -> List[Finding]:
    """Replace witness-free resized-layout ``needs-shadow`` findings
    with informational ``safe`` notes.

    ``escapes_seen`` is keyed ``(unit, symbol)``; findings for symbols
    it does not cover (shadow-API adoption, unanalyzed units) pass
    through untouched — absence of analysis is not absence of
    escapes.
    """
    out: List[Finding] = []
    for finding in findings:
        key = (finding.unit, finding.symbol)
        if finding.verdict == VERDICT_NEEDS_SHADOW \
                and finding.analysis == "data-layout" \
                and "resized" in finding.detail \
                and escapes_seen.get(key) is False:
            out.append(Finding(
                analysis="absint-escape", verdict=VERDICT_SAFE,
                unit=finding.unit, symbol=finding.symbol,
                detail="layout of %s resized, but the escape analysis "
                       "found no live pointer into it anywhere in the "
                       "replacement or the run kernel — downgraded "
                       "from needs-shadow" % finding.symbol))
        else:
            out.append(finding)
    return out

"""Hunk equivalence: prove old and new code agree outside the diff.

run-pre matching (§4.3 of the paper) tolerates drift *dynamically* —
at apply time it walks the running code against the helper object.
This pass is its static counterpart: for every changed function it
normalizes the pre and post instruction streams (canonical mnemonics
so short and long branch encodings compare equal, relocated fields
masked and compared by symbol instead of by bits) and computes the
longest common prefix and suffix.  What remains in the middle is the
*changed window* — the compiled hunk.  The evidence record pins down,
instruction by instruction, that everything outside that window is
equivalent modulo relocations, so a reviewer knows the replacement
differs from the original exactly where the source diff says it
should.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.model import EVIDENCE_EQUIVALENCE, Evidence
from repro.arch.disassembler import DecodedInstruction, iter_instructions
from repro.arch.isa import OperandKind
from repro.errors import DisassemblyError
from repro.objfile import ObjectFile, Section

#: a normalized instruction: (canonical mnemonic, operand view)
NormInstr = Tuple[str, Tuple[str, ...]]


def _normalize(instr: DecodedInstruction,
               reloc_symbols: Dict[int, str]) -> NormInstr:
    """Encoding-independent view of one instruction.

    Register and immediate operands keep their values; relocated
    fields compare by target symbol; branch displacements are masked
    entirely (layout moves them even when the control flow is
    unchanged — the CFG shape is compared via the mnemonic stream).
    """
    spec = instr.instruction.spec
    operands: List[str] = []
    field_offset = 1
    operand_iter = iter(instr.instruction.operands)
    sizes = {OperandKind.REG: 1, OperandKind.IMM32: 4,
             OperandKind.ABS32: 4, OperandKind.REL32: 4,
             OperandKind.REL8: 1, OperandKind.PAD: 1}
    for kind in spec.operands:
        if kind is OperandKind.PAD:
            field_offset += 1
            continue
        value = next(operand_iter)
        symbol = reloc_symbols.get(instr.offset + field_offset)
        if symbol is not None:
            operands.append("@" + symbol)
        elif kind in (OperandKind.REL32, OperandKind.REL8):
            operands.append("rel")
        elif kind is OperandKind.REG:
            operands.append("r%d" % value)
        else:
            operands.append("%d" % value)
        field_offset += sizes[kind]
    return (instr.canonical, tuple(operands))


def _normalized_stream(
        section: Optional[Section]) -> Optional[List[NormInstr]]:
    if section is None:
        return None
    reloc_symbols = {r.offset: r.symbol for r in section.relocations}
    try:
        return [_normalize(instr, reloc_symbols)
                for instr in iter_instructions(section.data)
                if not instr.is_nop]
    except DisassemblyError:
        return None


def equivalence_evidence(unit: str, fn: str,
                         pre_obj: Optional[ObjectFile],
                         post_obj: Optional[ObjectFile],
                         ) -> Optional[Evidence]:
    """Common-prefix/suffix proof for one changed function."""
    pre_section = pre_obj.sections.get(".text.%s" % fn) \
        if pre_obj is not None else None
    post_section = post_obj.sections.get(".text.%s" % fn) \
        if post_obj is not None else None
    pre = _normalized_stream(pre_section)
    post = _normalized_stream(post_section)
    if pre is None or post is None:
        return None

    prefix = 0
    while prefix < len(pre) and prefix < len(post) \
            and pre[prefix] == post[prefix]:
        prefix += 1
    suffix = 0
    while suffix < len(pre) - prefix and suffix < len(post) - prefix \
            and pre[len(pre) - 1 - suffix] == post[len(post) - 1 - suffix]:
        suffix += 1

    changed_pre = len(pre) - prefix - suffix
    changed_post = len(post) - prefix - suffix
    identical = changed_pre == 0 and changed_post == 0
    if identical:
        detail = ("all %d instructions equivalent modulo relocations "
                  "and branch encodings: the binary change is "
                  "relocation/layout-only" % len(pre))
    else:
        detail = ("%d leading and %d trailing instruction(s) "
                  "equivalent modulo relocations; the compiled hunk "
                  "replaces %d instruction(s) with %d"
                  % (prefix, suffix, changed_pre, changed_post))
    sites = []
    if not identical:
        sites.append("%s:%s: changed window pre[%d:%d] -> post[%d:%d] "
                     "(instruction indices, nops skipped)"
                     % (unit, fn, prefix, len(pre) - suffix,
                        prefix, len(post) - suffix))
    else:
        sites.append("%s:%s: streams identical after normalization"
                     % (unit, fn))
    return Evidence(
        kind=EVIDENCE_EQUIVALENCE, unit=unit, symbol=fn,
        detail=detail, sites=sites,
        facts={"pre_instructions": len(pre),
               "post_instructions": len(post),
               "common_prefix": prefix,
               "common_suffix": suffix,
               "changed_pre": changed_pre,
               "changed_post": changed_post,
               "relocation_only": identical})

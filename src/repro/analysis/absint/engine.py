"""Orchestration: run every absint client pass over one update.

:func:`run_absint` is the single entry point the combined analyzer
calls.  It walks the per-unit diffs once and

* proves (or refutes) ABI preservation for every changed function,
* attaches a hunk-equivalence witness per changed function,
* runs the pointer-escape analysis over every resized data symbol and
  downgrades witness-free ``needs-shadow`` findings,
* pins data-image witnesses onto the ``needs-hooks`` shapes
  (persistent-image changes and init-only writers),
* records shadow-API adoption call sites, and
* recovers per-call-site sleep-path witnesses for quiescence findings.

The return value is the *final* finding list (heuristic findings with
downgrades applied, plus any absint rejects) and the evidence records
to hang on the report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.analysis.absint.abi import analyze_abi
from repro.analysis.absint.dataimage import (
    image_change_evidence,
    init_writer_evidence,
)
from repro.analysis.absint.equiv import equivalence_evidence
from repro.analysis.absint.escape import (
    analyze_escapes,
    downgrade_unwitnessed_shadow,
    shadow_api_evidence,
)
from repro.analysis.absint.sleeppath import sleep_path_evidence
from repro.analysis.callgraph import CallGraph
from repro.analysis.model import Evidence, Finding
from repro.kbuild import BuildResult
from repro.objfile import ObjectFile

if TYPE_CHECKING:
    from repro.core.objdiff import UnitDiff


def run_absint(unit_diffs: Dict[str, "UnitDiff"],
               pre_objects: Dict[str, ObjectFile],
               post_objects: Dict[str, ObjectFile],
               run_build: Optional[BuildResult],
               graph: Optional[CallGraph],
               heuristic_findings: List[Finding],
               ) -> Tuple[List[Finding], List[Evidence]]:
    """All client passes over one update's diffs."""
    patched_names: Set[str] = set()
    for diff in unit_diffs.values():
        patched_names |= set(diff.changed_functions)
        patched_names |= set(diff.new_functions)

    findings: List[Finding] = list(heuristic_findings)
    evidence: List[Evidence] = []
    escapes_seen: Dict[Tuple[str, str], bool] = {}

    for unit in sorted(unit_diffs):
        diff = unit_diffs[unit]
        pre = pre_objects.get(unit)
        post = post_objects.get(unit)

        for fn in sorted(diff.changed_functions):
            abi_findings, abi_evidence = analyze_abi(
                unit, fn, pre, post, run_build, patched_names)
            findings.extend(abi_findings)
            evidence.extend(abi_evidence)
            equivalence = equivalence_evidence(unit, fn, pre, post)
            if equivalence is not None:
                evidence.append(equivalence)
            sleep = sleep_path_evidence(graph, unit, fn, pre)
            if sleep is not None:
                evidence.append(sleep)
            if graph is not None:
                node = graph.node_for(unit, fn)
                if node is not None and graph.is_init_only(node):
                    init_ev = init_writer_evidence(graph, unit, fn,
                                                   pre, post)
                    if init_ev is not None:
                        evidence.append(init_ev)

        escape_evidence, unit_escapes = analyze_escapes(
            unit, set(diff.resized_data), post, run_build)
        evidence.extend(escape_evidence)
        for symbol, escaped in unit_escapes.items():
            escapes_seen[(unit, symbol)] = escaped

        evidence.extend(shadow_api_evidence(unit, pre, post))

        for section_name in diff.persistent_data_sections():
            evidence.append(image_change_evidence(
                unit, section_name, pre, post, run_build))

    return downgrade_unwitnessed_shadow(findings, escapes_seen), evidence

"""Concrete witnesses for ``needs-hooks`` verdicts.

Two Table-1 shapes produce ``needs-hooks`` and each gets evidence:

* **persistent-data image change** — the pre and post data sections
  differ byte-for-byte.  The witness is the exact differing byte
  span (first/last differing offset, sizes) plus every run-kernel
  relocation that reads or writes the symbol: the live state that the
  code-only update would leave stale, and who looks at it.
* **init-only writer** — a changed function initializes persistent
  data but is reachable only from the boot path.  The witness is the
  set of instructions in the replacement text that reference the data
  (so the "writes persistent data" claim is checkable) plus the boot
  chain facts from the call graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.absint.escape import _run_kernel_references
from repro.analysis.callgraph import CallGraph, format_node
from repro.analysis.model import EVIDENCE_DATA_IMAGE, Evidence
from repro.kbuild import BuildResult
from repro.objfile import ObjectFile, SectionKind, SymbolKind


def _strip_data_prefix(section_name: str) -> str:
    for prefix in (".data.", ".bss.", ".rodata."):
        if section_name.startswith(prefix):
            return section_name[len(prefix):]
    return section_name


def _diff_span(pre: bytes, post: bytes) -> Dict[str, int]:
    """First/last differing byte offsets between two images."""
    limit = min(len(pre), len(post))
    first = next((i for i in range(limit) if pre[i] != post[i]),
                 limit if len(pre) != len(post) else -1)
    last = -1
    for i in range(limit - 1, -1, -1):
        if pre[i] != post[i]:
            last = i
            break
    if len(pre) != len(post):
        last = max(last, max(len(pre), len(post)) - 1)
    return {"first_diff": first, "last_diff": last,
            "pre_size": len(pre), "post_size": len(post)}


def image_change_evidence(unit: str, section_name: str,
                          pre_obj: Optional[ObjectFile],
                          post_obj: Optional[ObjectFile],
                          run_build: Optional[BuildResult],
                          ) -> Evidence:
    """Witness for one changed persistent-data section."""
    symbol = _strip_data_prefix(section_name)
    pre_section = pre_obj.sections.get(section_name) \
        if pre_obj is not None else None
    post_section = post_obj.sections.get(section_name) \
        if post_obj is not None else None
    facts = _diff_span(pre_section.data if pre_section else b"",
                       post_section.data if post_section else b"")
    sites = []
    if facts["first_diff"] >= 0:
        sites.append("%s:%s bytes [0x%x..0x%x] differ between the "
                     "pre and post images"
                     % (unit, section_name, facts["first_diff"],
                        max(facts["first_diff"], facts["last_diff"])))
    run_sites, _anchors = _run_kernel_references(run_build, symbol)
    sites.extend(run_sites)
    facts["run_kernel_references"] = len(run_sites)
    return Evidence(
        kind=EVIDENCE_DATA_IMAGE, unit=unit, symbol=symbol,
        detail="persistent image of %s differs (%d -> %d bytes); the "
               "running kernel's copy stays on the old image unless "
               "hook code rewrites it" % (symbol, facts["pre_size"],
                                          facts["post_size"]),
        sites=sites, facts=facts)


def init_writer_evidence(graph: Optional[CallGraph],
                         unit: str, fn: str,
                         pre_obj: Optional[ObjectFile],
                         post_obj: Optional[ObjectFile],
                         ) -> Optional[Evidence]:
    """Witness that ``fn`` touches persistent data and only runs at
    boot: the referencing instructions plus the boot-only chain."""
    sites: List[str] = []
    data_symbols: Set[str] = set()
    for obj in (post_obj, pre_obj):
        if obj is None:
            continue
        section = obj.sections.get(".text.%s" % fn)
        if section is None:
            continue
        for reloc in section.sorted_relocations():
            target = _defined_data_symbol(post_obj, pre_obj,
                                          reloc.symbol)
            if target:
                data_symbols.add(reloc.symbol)
                sites.append("%s:%s+0x%x: references persistent "
                             "data %s" % (unit, fn, reloc.offset,
                                          reloc.symbol))
        break  # post text is authoritative; pre only as fallback
    if not data_symbols:
        return None
    facts: Dict[str, object] = {
        "data_symbols": sorted(data_symbols)}
    if graph is not None:
        node = graph.node_for(unit, fn)
        if node is not None:
            closure = sorted(format_node(n)
                             for n in graph.caller_closure([node]))
            facts["boot_only"] = graph.is_init_only(node)
            facts["caller_closure"] = closure
    return Evidence(
        kind=EVIDENCE_DATA_IMAGE, unit=unit, symbol=fn,
        detail="changed function initializes %s but every call chain "
               "starts at a boot entry point; its fixed code will "
               "never re-run, so only hook code can repair the "
               "already-initialized state"
               % ", ".join(sorted(data_symbols)),
        sites=sites, facts=facts)


def _defined_data_symbol(post: Optional[ObjectFile],
                         pre: Optional[ObjectFile],
                         name: str) -> bool:
    for obj in (post, pre):
        if obj is None:
            continue
        symbol = obj.find_symbol(name)
        if symbol is None or not symbol.is_defined:
            continue
        if symbol.kind is not SymbolKind.OBJECT:
            return False
        defining = obj.sections.get(symbol.section or "")
        return defining is not None and defining.kind in (
            SectionKind.DATA, SectionKind.BSS, SectionKind.RODATA)
    return False

"""Per-function abstract interpretation of k86 object code.

:func:`summarize_function` decodes one function's text, builds its
control-flow graph (short and long branches resolve to the same
in-buffer targets), and runs a join-based worklist fixpoint over
:class:`~repro.analysis.absint.domain.MachineState`.  The result is a
:class:`FunctionSummary` — the single artifact every client pass
(ABI, pointer escape, sleep reachability) reads:

* every ``ret`` site with its stack depth and the provenance of
  ``fp``/``r0`` at that point (stack-discipline and callee-saved
  proofs);
* every argument slot the function reads through its frame pointer
  (the observable arity);
* every call site with its callee and any tracked data pointers live
  on the stack at the moment of the call (escape witnesses);
* every ``sched``/``hlt`` site (sleep points) and every direct
  load/store touching a data symbol (access witnesses).

The interpreter is sound-for-evidence rather than complete: anything
it cannot model folds to ``UNKNOWN``/unknown-``sp``, which can only
suppress a downgrade-to-safe, never invent one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.absint.domain import (
    CONST,
    DATAPTR,
    ENTRY,
    STACKADDR,
    TOP,
    AbsValue,
    MachineState,
    arg_slot_index,
    const,
    dataptr,
    entry_value,
    join_states,
    signed32,
    stackaddr,
)
from repro.arch.disassembler import DecodedInstruction, iter_instructions
from repro.arch.isa import (
    REG_FP,
    REG_SP,
    InstructionSpec,
    OperandKind,
)
from repro.errors import DisassemblyError
from repro.objfile import Section

#: upper bound on fixpoint iterations per instruction (defensive; the
#: lattice has finite height so real code converges far earlier)
MAX_VISITS_PER_INSTRUCTION = 64

#: registers a call may clobber (everything but fp/sp, which the
#: callee's prologue/epilogue discipline preserves)
CALL_CLOBBERED = tuple(r for r in range(8) if r not in (REG_FP, REG_SP))


@dataclass(frozen=True)
class RetSite:
    """One ``ret`` instruction and the state it returns with."""

    offset: int
    #: entry-relative sp at the ret (0 = balanced), None = unknown
    sp: Optional[int]
    #: fp still holds its entry value
    fp_preserved: bool
    #: registers (by index) proven to hold their entry values
    preserved_registers: Tuple[int, ...]
    #: data symbol r0 points into at return, "" otherwise
    returns_pointer_to: str = ""


@dataclass(frozen=True)
class CallSite:
    """One ``call``/``callr`` and what was live when it ran."""

    offset: int
    callee: str
    #: data symbols with a live pointer on the stack at the call
    live_pointer_symbols: Tuple[str, ...] = ()


@dataclass(frozen=True)
class AccessEvent:
    """One instruction touching a data symbol."""

    offset: int
    symbol: str
    mnemonic: str
    is_write: bool


@dataclass(frozen=True)
class EscapeEvent:
    """A pointer into a data symbol leaving the local frame."""

    offset: int
    symbol: str
    mnemonic: str
    reason: str


@dataclass
class FunctionSummary:
    """Everything the client passes need to know about one function."""

    name: str
    size: int = 0
    instruction_count: int = 0
    decode_ok: bool = True
    opaque_reason: str = ""
    #: argument slot indices read through the frame
    arg_slots_read: Set[int] = field(default_factory=set)
    rets: List[RetSite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    sleep_sites: List[int] = field(default_factory=list)
    accesses: List[AccessEvent] = field(default_factory=list)
    escapes: List[EscapeEvent] = field(default_factory=list)
    #: deepest entry-relative sp observed (bytes, <= 0)
    max_stack_depth: int = 0

    @property
    def args_read(self) -> int:
        """Observable arity: one past the highest argument slot read."""
        return max(self.arg_slots_read) + 1 if self.arg_slots_read else 0

    @property
    def stack_balanced(self) -> bool:
        """Every return leaves sp exactly where entry found it."""
        return bool(self.rets) and all(r.sp == 0 for r in self.rets)

    @property
    def frame_preserved(self) -> bool:
        return bool(self.rets) and all(r.fp_preserved for r in self.rets)

    def escape_symbols(self) -> Set[str]:
        return {e.symbol for e in self.escapes}

    def accessed_symbols(self) -> Set[str]:
        return {a.symbol for a in self.accesses}


def _operand_field_offsets(
        spec: InstructionSpec) -> Dict[int, OperandKind]:
    """Byte offset (from instruction start) of each non-PAD operand."""
    sizes = {OperandKind.REG: 1, OperandKind.IMM32: 4,
             OperandKind.ABS32: 4, OperandKind.REL32: 4,
             OperandKind.REL8: 1, OperandKind.PAD: 1}
    fields: Dict[int, OperandKind] = {}
    offset = 1
    for kind in spec.operands:
        if kind is not OperandKind.PAD:
            fields[offset] = kind
        offset += sizes[kind]
    return fields


def _reloc_symbol_for(instr: DecodedInstruction,
                      relocations: Dict[int, Tuple[str, int]],
                      wanted: OperandKind) -> Optional[Tuple[str, int]]:
    """``(symbol, addend)`` of the relocation on ``instr``'s ``wanted``
    operand field, if any."""
    for field_offset, kind in _operand_field_offsets(
            instr.instruction.spec).items():
        if kind is wanted:
            entry = relocations.get(instr.offset + field_offset)
            if entry is not None:
                return entry
    return None


def _relocation_map(section: Section) -> Dict[int, Tuple[str, int]]:
    return {reloc.offset: (reloc.symbol, reloc.addend)
            for reloc in section.relocations}


def summarize_function(
        name: str,
        code: bytes,
        relocations: Dict[int, Tuple[str, int]],
        start: int = 0,
        end: int = -1,
        resolve_callee: Optional[Callable[[int], str]] = None,
        ) -> FunctionSummary:
    """Fixpoint-interpret ``code[start:end]`` as one function body."""
    limit = len(code) if end < 0 else min(end, len(code))
    summary = FunctionSummary(name=name, size=limit - start)
    try:
        instrs = list(iter_instructions(code, start, limit))
    except DisassemblyError as exc:
        summary.decode_ok = False
        summary.opaque_reason = str(exc)
        return summary
    summary.instruction_count = len(instrs)
    if not instrs:
        return summary
    by_offset = {i.offset: i for i in instrs}

    states: Dict[int, MachineState] = {instrs[0].offset: MachineState()}
    worklist: List[int] = [instrs[0].offset]
    visits: Dict[int, int] = {}
    budget = MAX_VISITS_PER_INSTRUCTION

    while worklist:
        offset = worklist.pop()
        if visits.get(offset, 0) >= budget:
            continue
        visits[offset] = visits.get(offset, 0) + 1
        instr = by_offset.get(offset)
        if instr is None:
            continue
        state = states[offset]
        out, successors = _transfer(instr, state, relocations,
                                    resolve_callee, summary)
        if out.sp is not None and out.sp < summary.max_stack_depth:
            summary.max_stack_depth = out.sp
        for succ in successors:
            if succ not in by_offset:
                continue
            merged = out if succ not in states \
                else join_states(states[succ], out)
            if succ not in states or merged != states[succ]:
                states[succ] = merged
                worklist.append(succ)
    return summary


def _transfer(instr: DecodedInstruction, state: MachineState,
              relocations: Dict[int, Tuple[str, int]],
              resolve_callee: Optional[Callable[[int], str]],
              summary: FunctionSummary,
              ) -> Tuple[MachineState, List[int]]:
    """One instruction's abstract effect; returns (state, successors)."""
    mnem = instr.mnemonic
    ops = instr.instruction.operands
    fall = instr.offset + instr.length
    succs = [fall]

    if mnem == "movi":
        state = state.with_reg(ops[0], const(ops[1]))
    elif mnem == "movr":
        dst, src = ops
        value = state.reg(src)
        if src == REG_SP and state.sp is not None:
            value = stackaddr(state.sp)
        if dst == REG_SP:
            state = state.with_sp(
                value.value if value.kind == STACKADDR else None)
        else:
            state = state.with_reg(dst, value)
    elif mnem == "lea":
        entry = _reloc_symbol_for(instr, relocations, OperandKind.ABS32)
        if entry is not None:
            state = state.with_reg(ops[0], dataptr(entry[0], entry[1]))
        else:
            state = state.with_reg(ops[0], const(ops[1]))
    elif mnem == "load":
        entry = _reloc_symbol_for(instr, relocations, OperandKind.ABS32)
        if entry is not None:
            summary.accesses.append(AccessEvent(
                offset=instr.offset, symbol=entry[0], mnemonic=mnem,
                is_write=False))
        state = state.with_reg(ops[0], TOP)
    elif mnem == "store":
        entry = _reloc_symbol_for(instr, relocations, OperandKind.ABS32)
        if entry is not None:
            summary.accesses.append(AccessEvent(
                offset=instr.offset, symbol=entry[0], mnemonic=mnem,
                is_write=True))
        stored = state.reg(ops[1])
        if stored.kind == DATAPTR:
            summary.escapes.append(EscapeEvent(
                offset=instr.offset, symbol=stored.symbol,
                mnemonic=mnem,
                reason="pointer stored to global memory"))
    elif mnem == "loadr":
        dst, base, imm = ops
        base_value = state.reg(base)
        loaded = TOP
        if base == REG_SP and state.sp is not None:
            base_value = stackaddr(state.sp)
        if base_value.kind == STACKADDR:
            slot = base_value.value + signed32(imm)
            loaded = state.slot(slot)
            arg = arg_slot_index(slot)
            if arg is not None:
                summary.arg_slots_read.add(arg)
                if loaded == TOP:
                    # arguments keep their caller-supplied identity so
                    # pointer arguments stay trackable
                    loaded = AbsValue(kind=ENTRY, value=-(arg + 1))
        elif base_value.kind == DATAPTR:
            summary.accesses.append(AccessEvent(
                offset=instr.offset, symbol=base_value.symbol,
                mnemonic=mnem, is_write=False))
        state = state.with_reg(dst, loaded)
    elif mnem == "storer":
        base, imm, src = ops
        base_value = state.reg(base)
        stored = state.reg(src)
        if base == REG_SP and state.sp is not None:
            base_value = stackaddr(state.sp)
        if base_value.kind == STACKADDR:
            state = state.with_slot(base_value.value + signed32(imm),
                                    stored)
        elif base_value.kind == DATAPTR:
            summary.accesses.append(AccessEvent(
                offset=instr.offset, symbol=base_value.symbol,
                mnemonic=mnem, is_write=True))
            if stored.kind == DATAPTR:
                summary.escapes.append(EscapeEvent(
                    offset=instr.offset, symbol=stored.symbol,
                    mnemonic=mnem,
                    reason="pointer stored through a pointer into %s"
                           % base_value.symbol))
        elif stored.kind == DATAPTR:
            summary.escapes.append(EscapeEvent(
                offset=instr.offset, symbol=stored.symbol,
                mnemonic=mnem,
                reason="pointer stored through an untracked pointer"))
    elif mnem == "addi":
        reg, imm = ops
        delta = signed32(imm)
        if reg == REG_SP:
            state = state.with_sp(
                state.sp + delta if state.sp is not None else None)
        else:
            value = state.reg(reg)
            if value.kind == CONST:
                state = state.with_reg(reg, const(value.value + delta))
            elif value.kind == STACKADDR:
                state = state.with_reg(reg,
                                       stackaddr(value.value + delta))
            elif value.kind == DATAPTR:
                state = state.with_reg(
                    reg, dataptr(value.symbol, value.value + delta))
            else:
                state = state.with_reg(reg, TOP)
    elif mnem in ("add", "sub", "mul", "div", "and", "or", "xor",
                  "shl", "shr", "mod"):
        dst, src = ops
        a, b = state.reg(dst), state.reg(src)
        if mnem in ("add", "sub") and DATAPTR in (a.kind, b.kind):
            ptr = a if a.kind == DATAPTR else b
            # indexing into the symbol: keep provenance, drop the offset
            state = state.with_reg(dst, dataptr(ptr.symbol, 0))
        elif a.kind == CONST and b.kind == CONST and mnem == "add":
            state = state.with_reg(dst, const(a.value + b.value))
        else:
            state = state.with_reg(dst, TOP)
    elif mnem in ("neg", "not"):
        state = state.with_reg(ops[0], TOP)
    elif mnem in ("cmp", "cmpi", "nop", "nop2", "nop3", "nop4",
                  "cli", "sti"):
        pass
    elif mnem == "push":
        if state.sp is not None:
            new_sp = state.sp - 4
            state = state.with_sp(new_sp).with_slot(new_sp,
                                                    state.reg(ops[0]))
    elif mnem == "pop":
        if state.sp is not None:
            state = state.with_reg(ops[0], state.slot(state.sp))
            state = state.with_sp(state.sp + 4)
        else:
            state = state.with_reg(ops[0], TOP)
    elif mnem in ("call", "callr"):
        callee = ""
        if mnem == "call":
            entry = _reloc_symbol_for(instr, relocations,
                                      OperandKind.REL32)
            if entry is not None:
                callee = entry[0]
            elif resolve_callee is not None:
                target = instr.branch_target_offset()
                if target is not None:
                    callee = resolve_callee(target)
        live: List[str] = []
        if state.sp is not None:
            for slot_offset, value in state.stack:
                if state.sp <= slot_offset < 0 \
                        and value.kind == DATAPTR:
                    live.append(value.symbol)
        summary.calls.append(CallSite(
            offset=instr.offset, callee=callee,
            live_pointer_symbols=tuple(sorted(set(live)))))
        for symbol in sorted(set(live)):
            summary.escapes.append(EscapeEvent(
                offset=instr.offset, symbol=symbol, mnemonic=mnem,
                reason="live pointer on the stack at call to %s"
                       % (callee or "(indirect)")))
        for reg in CALL_CLOBBERED:
            state = state.with_reg(reg, TOP)
    elif mnem == "ret":
        fp_value = state.reg(REG_FP)
        preserved = tuple(i for i in range(8)
                          if i != REG_SP
                          and state.reg(i).is_entry(i))
        r0 = state.reg(0)
        summary.rets.append(RetSite(
            offset=instr.offset, sp=state.sp,
            fp_preserved=fp_value.is_entry(REG_FP),
            preserved_registers=preserved,
            returns_pointer_to=(r0.symbol
                                if r0.kind == DATAPTR else "")))
        return state, []
    elif mnem in ("sched", "hlt"):
        summary.sleep_sites.append(instr.offset)
        if mnem == "hlt":
            return state, []
    elif mnem == "syscall":
        state = state.with_reg(0, TOP)
    elif instr.canonical in ("jmp", "jz", "jnz", "jl", "jg", "jle",
                             "jge"):
        target = instr.branch_target_offset()
        if instr.canonical == "jmp":
            succs = [] if target is None else [target]
        elif target is not None:
            succs = [fall, target]
        return state, succs
    return state, succs


def summarize_section_function(
        obj_section: Section, name: str,
        resolve_callee: Optional[Callable[[int], str]] = None,
        start: int = 0, end: int = -1) -> FunctionSummary:
    """Summarize a function stored in ``obj_section`` (the whole
    section for function-sections objects, an extent of it for merged
    run-kernel builds)."""
    return summarize_function(
        name, obj_section.data, _relocation_map(obj_section),
        start=start, end=end, resolve_callee=resolve_callee)


def fresh_state() -> MachineState:
    """Entry state (exposed for tests)."""
    return MachineState(regs=tuple(entry_value(i) for i in range(8)))

"""Abstract values and machine states for the k86 interpreter.

The domain is deliberately small — exactly rich enough to prove the
three properties the client passes need:

* **stack discipline** — ``sp`` is tracked as a concrete byte offset
  relative to the function's entry (0 = pointing at the return
  address), or ``None`` once any path makes it unknowable;
* **register provenance** — every register holds an
  :class:`AbsValue`: the value it had at entry (``ENTRY``, how we
  prove callee-saved registers survive), a compile-time constant
  (``CONST``), the address of a data symbol (``DATAPTR``, the seed of
  every pointer-escape witness), an address into the current frame
  (``STACKADDR``), or ``UNKNOWN``;
* **frame contents** — a map from entry-relative stack offsets to
  abstract values, so argument-slot reads (``fp+8+4i``) and pointer
  spills are visible.

Joins are pointwise; two different values join to ``UNKNOWN`` and two
different stack depths join to unknown-``sp``.  Everything is a frozen
dataclass so states are hashable-by-value and cheap to compare for the
fixpoint's convergence test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.arch.isa import NUM_REGISTERS

#: AbsValue kinds
UNKNOWN = "unknown"
ENTRY = "entry"          # the value register ``reg`` held at entry
CONST = "const"          # a compile-time constant (``value``)
DATAPTR = "dataptr"      # address of data symbol ``symbol`` (+ offset)
STACKADDR = "stackaddr"  # entry-sp-relative address (``value``)


@dataclass(frozen=True)
class AbsValue:
    """One abstract value; ``kind`` selects which payload is live."""

    kind: str
    value: int = 0
    symbol: str = ""

    def is_entry(self, reg: int) -> bool:
        return self.kind == ENTRY and self.value == reg

    def render(self) -> str:
        if self.kind == CONST:
            return "#%d" % self.value
        if self.kind == DATAPTR:
            return "&%s+%d" % (self.symbol, self.value)
        if self.kind == STACKADDR:
            return "sp%+d" % self.value
        if self.kind == ENTRY:
            return "entry(r%d)" % self.value
        return "?"


TOP = AbsValue(kind=UNKNOWN)


def entry_value(reg: int) -> AbsValue:
    return AbsValue(kind=ENTRY, value=reg)


def const(value: int) -> AbsValue:
    return AbsValue(kind=CONST, value=value & 0xFFFFFFFF)


def dataptr(symbol: str, offset: int = 0) -> AbsValue:
    return AbsValue(kind=DATAPTR, value=offset, symbol=symbol)


def stackaddr(offset: int) -> AbsValue:
    return AbsValue(kind=STACKADDR, value=offset)


def join_values(a: AbsValue, b: AbsValue) -> AbsValue:
    return a if a == b else TOP


def signed32(value: int) -> int:
    """IMM32 fields decode unsigned; interpret as two's complement."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


@dataclass(frozen=True)
class MachineState:
    """Abstract registers + frame at one program point.

    ``sp`` is the entry-relative stack pointer (0 at entry, pushes go
    negative) or ``None`` when lost.  ``stack`` maps entry-relative
    byte offsets to values; argument ``i`` lives at ``4 + 4*i`` (the
    return address occupies offset 0).
    """

    sp: Optional[int] = 0
    regs: Tuple[AbsValue, ...] = field(
        default_factory=lambda: tuple(entry_value(i)
                                      for i in range(NUM_REGISTERS)))
    stack: Tuple[Tuple[int, AbsValue], ...] = ()

    def reg(self, index: int) -> AbsValue:
        return self.regs[index]

    def with_reg(self, index: int, value: AbsValue) -> "MachineState":
        regs = list(self.regs)
        regs[index] = value
        return MachineState(sp=self.sp, regs=tuple(regs),
                            stack=self.stack)

    def with_sp(self, sp: Optional[int]) -> "MachineState":
        return MachineState(sp=sp, regs=self.regs, stack=self.stack)

    def stack_dict(self) -> Dict[int, AbsValue]:
        return dict(self.stack)

    def with_slot(self, offset: int, value: AbsValue) -> "MachineState":
        slots = self.stack_dict()
        slots[offset] = value
        return MachineState(
            sp=self.sp, regs=self.regs,
            stack=tuple(sorted(slots.items())))

    def slot(self, offset: int) -> AbsValue:
        return self.stack_dict().get(offset, TOP)


def join_states(a: MachineState, b: MachineState) -> MachineState:
    sp = a.sp if a.sp == b.sp else None
    regs = tuple(join_values(x, y) for x, y in zip(a.regs, b.regs))
    a_stack, b_stack = a.stack_dict(), b.stack_dict()
    slots = {off: join_values(a_stack[off], b_stack[off])
             for off in set(a_stack) & set(b_stack)
             if join_values(a_stack[off], b_stack[off]) != TOP}
    return MachineState(sp=sp, regs=regs,
                        stack=tuple(sorted(slots.items())))


def arg_slot_index(offset: int) -> Optional[int]:
    """Argument index stored at entry-relative stack ``offset``.

    The caller pushed the arguments just above the return address, so
    argument ``i`` sits at ``4 + 4*i``; anything at or below the
    return address is frame-local.
    """
    if offset >= 4 and (offset - 4) % 4 == 0:
        return (offset - 4) // 4
    return None

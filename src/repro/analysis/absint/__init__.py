"""Abstract interpretation over decoded k86 object code.

The heuristic analyses of :mod:`repro.analysis` label an update;
this package *proves* the label.  A small abstract domain
(:mod:`~repro.analysis.absint.domain`) tracks each register and stack
slot as unknown / entry value / constant / data pointer / stack
address; a worklist interpreter
(:mod:`~repro.analysis.absint.interp`) runs every function's decoded
text to a fixpoint and emits a :class:`FunctionSummary`.  Client
passes turn summaries into machine-checkable
:class:`~repro.analysis.model.Evidence` records:

``abi``            stack discipline and observable arity per changed
                   function, with prototype-ripple detection against
                   the run kernel's actual call sites;
``equivalence``    old/new code outside the compiled hunk equivalent
                   modulo relocations;
``escape``         concrete pointer-escape witnesses for layout-
                   changed data (and the safe downgrade when nothing
                   escapes anywhere);
``shadow-api``     call sites of newly-adopted shadow-structure API;
``data-image``     differing byte spans and init-only-writer chains
                   behind every ``needs-hooks``;
``sleep-path``     per-call-site chains to the parked instruction
                   behind every ``quiesce-risk``.

:func:`run_absint` orchestrates all passes for the combined analyzer.
"""

from repro.analysis.absint.abi import (
    analyze_abi,
    caller_arg_counts,
    function_summary,
)
from repro.analysis.absint.dataimage import (
    image_change_evidence,
    init_writer_evidence,
)
from repro.analysis.absint.domain import (
    AbsValue,
    MachineState,
    join_states,
    join_values,
)
from repro.analysis.absint.engine import run_absint
from repro.analysis.absint.equiv import equivalence_evidence
from repro.analysis.absint.escape import (
    analyze_escapes,
    downgrade_unwitnessed_shadow,
    shadow_api_evidence,
)
from repro.analysis.absint.interp import (
    FunctionSummary,
    summarize_function,
    summarize_section_function,
)
from repro.analysis.absint.sleeppath import (
    sleep_evidence_for_diffs,
    sleep_path_evidence,
)

__all__ = [
    "AbsValue",
    "FunctionSummary",
    "MachineState",
    "analyze_abi",
    "analyze_escapes",
    "caller_arg_counts",
    "downgrade_unwitnessed_shadow",
    "equivalence_evidence",
    "function_summary",
    "image_change_evidence",
    "init_writer_evidence",
    "join_states",
    "join_values",
    "run_absint",
    "shadow_api_evidence",
    "sleep_evidence_for_diffs",
    "sleep_path_evidence",
    "summarize_function",
    "summarize_section_function",
]

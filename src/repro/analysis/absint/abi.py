"""ABI/stack dataflow pass: prove a patched function keeps its
callers' calling convention.

For every changed function the pass interprets both the pre and the
post body (:func:`~repro.analysis.absint.interp.summarize_function`)
and compares the observable ABI facts:

* **stack discipline** — the replacement must leave ``sp`` exactly
  balanced and restore ``fp`` at every return; breaking either
  corrupts the caller's frame the first time the patched code runs
  (``reject``);
* **observable arity** — the highest argument slot the replacement
  reads.  Reading *more* argument slots than the pre code is the
  prototype-ripple signature: a caller compiled against the old
  prototype pushed fewer words, so the extra reads hit garbage.  That
  is only fatal when such a caller exists *outside* the patch, which
  the pass checks against the run kernel's actual call sites (the
  pushed-argument count recovered from the caller's own code, not
  from any declaration).

Every changed function gets one ``abi`` evidence record whether or
not a problem was found — the record is what lets a ``safe`` verdict
be *proven* rather than merely asserted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.absint.interp import (
    FunctionSummary,
    summarize_section_function,
)
from repro.analysis.model import (
    EVIDENCE_ABI,
    VERDICT_REJECT,
    Evidence,
    Finding,
)
from repro.arch.disassembler import iter_instructions
from repro.arch.isa import REG_SP
from repro.errors import DisassemblyError
from repro.kbuild import BuildResult
from repro.objfile import ObjectFile


def function_summary(obj: Optional[ObjectFile],
                     fn: str) -> Optional[FunctionSummary]:
    """Summary of ``fn``'s function-sections text in ``obj``."""
    if obj is None:
        return None
    section = obj.sections.get(".text.%s" % fn)
    if section is None:
        return None
    return summarize_section_function(section, fn)


def caller_arg_counts(build: Optional[BuildResult],
                      fn: str) -> Dict[str, int]:
    """How many argument words each run-kernel call site of ``fn``
    pushes, recovered from the caller's code: the words the caller
    pops (``addi sp, +4n``) straight after the ``call``.

    Keys are ``unit:function`` of the calling site's host; when a
    function is called from several sites the *minimum* count is kept
    (the weakest caller is the one a wider replacement would break).
    """
    if build is None:
        return {}
    from repro.analysis.callgraph import _function_extents

    counts: Dict[str, int] = {}
    for unit in sorted(build.objects):
        obj = build.objects[unit]
        for section in obj.text_sections():
            extents = _function_extents(obj, section)
            starts = {name: start for start, _end, name in extents}
            if fn not in starts and not any(
                    r.symbol == fn for r in section.relocations):
                continue
            try:
                instrs = list(iter_instructions(section.data))
            except DisassemblyError:
                continue
            reloc_syms = {r.offset: r.symbol
                          for r in section.relocations}
            for index, instr in enumerate(instrs):
                if instr.mnemonic != "call":
                    continue
                target = reloc_syms.get(instr.offset + 1)
                if target is None:
                    branch = instr.branch_target_offset()
                    target = next(
                        (name for start, end, name in extents
                         if branch is not None
                         and start <= branch < end
                         and branch == start), None)
                if target != fn:
                    continue
                pushed = 0
                if index + 1 < len(instrs):
                    after = instrs[index + 1]
                    ops = after.instruction.operands
                    if after.mnemonic == "addi" and ops[0] == REG_SP \
                            and 0 < ops[1] < 0x80000000:
                        pushed = ops[1] // 4
                host = next((name for start, end, name in extents
                             if start <= instr.offset < end), "?")
                key = "%s:%s" % (unit, host)
                counts[key] = min(counts.get(key, pushed), pushed)
    return counts


def analyze_abi(unit: str, fn: str,
                pre_obj: Optional[ObjectFile],
                post_obj: Optional[ObjectFile],
                run_build: Optional[BuildResult],
                patched_names: Set[str],
                ) -> Tuple[List[Finding], List[Evidence]]:
    """One changed function's ABI proof (or counterexample)."""
    pre = function_summary(pre_obj, fn)
    post = function_summary(post_obj, fn)
    if post is None or not post.decode_ok:
        return [], []

    findings: List[Finding] = []
    facts: Dict[str, object] = {
        "args_read_pre": pre.args_read if pre else 0,
        "args_read_post": post.args_read,
        "stack_balanced": post.stack_balanced,
        "frame_preserved": post.frame_preserved,
        "returns": len(post.rets),
        "calls": len(post.calls),
        "max_stack_depth": post.max_stack_depth,
    }
    sites = ["%s:%s+0x%x: ret (sp%s, fp %s)"
             % (unit, fn, ret.offset,
                "%+d" % ret.sp if ret.sp is not None else " unknown",
                "preserved" if ret.fp_preserved else "clobbered")
             for ret in post.rets]
    sites += ["%s:%s: reads argument slot %d" % (unit, fn, slot)
              for slot in sorted(post.arg_slots_read)]

    if post.rets and not (post.stack_balanced and post.frame_preserved):
        findings.append(Finding(
            analysis="absint-abi", verdict=VERDICT_REJECT,
            unit=unit, symbol=fn,
            detail="replacement code breaks the stack discipline "
                   "(sp unbalanced or fp clobbered at a return); "
                   "redirecting callers to it would corrupt their "
                   "frames"))

    shortfall: List[str] = []
    if pre is not None and pre.decode_ok \
            and post.args_read > pre.args_read:
        facts["prototype_ripple"] = True
        for caller, pushed in sorted(
                caller_arg_counts(run_build, fn).items()):
            caller_fn = caller.split(":", 1)[-1]
            if caller_fn in patched_names:
                continue  # the patch replaces this caller too
            if pushed < post.args_read:
                shortfall.append("%s pushes %d arg%s" %
                                 (caller, pushed,
                                  "s" if pushed != 1 else ""))
        if shortfall:
            findings.append(Finding(
                analysis="absint-abi", verdict=VERDICT_REJECT,
                unit=unit, symbol=fn,
                detail="replacement reads %d argument slot(s) but "
                       "unpatched callers push fewer (%s); the extra "
                       "reads would hit stack garbage"
                       % (post.args_read, "; ".join(shortfall))))
            facts["unpatched_short_callers"] = shortfall

    detail = ("replacement preserves the callers' ABI: stack "
              "balanced at %d return(s), frame pointer restored, "
              "reads %d argument slot(s) (pre read %d)"
              % (len(post.rets), post.args_read,
                 pre.args_read if pre else 0))
    if findings:
        detail = "ABI violation witnessed (see the absint-abi finding)"
    evidence = Evidence(kind=EVIDENCE_ABI, unit=unit, symbol=fn,
                        detail=detail, sites=sites, facts=facts)
    return findings, [evidence]

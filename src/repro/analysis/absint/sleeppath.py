"""Sleep/blocking-point reachability: per-call-site quiescence proofs.

The quiescence analysis (:mod:`repro.analysis.quiescence`) flags a
patched function whose call chains reach a ``sched``/``hlt``.  This
pass attaches the *witness*: the exact call instructions along the
shortest chain (recovered from the call graph's per-edge call-site
offsets) and the exact sleeping instruction at the end.  Each hop is a
program point an operator — or the control plane's publish gate — can
check against the object code, instead of trusting a whole-function
flag.

Without the run kernel's build the pass degrades the same way the
quiescence walk does: the patched function's own sleep instructions
(found by the abstract interpreter over its pre text) are the whole
witness.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.absint.abi import function_summary
from repro.analysis.callgraph import CallGraph, format_node
from repro.analysis.model import EVIDENCE_SLEEP_PATH, Evidence
from repro.objfile import ObjectFile


def sleep_path_evidence(graph: Optional[CallGraph],
                        unit: str, fn: str,
                        pre_obj: Optional[ObjectFile],
                        ) -> Optional[Evidence]:
    """Evidence for one patched function's path to a sleep point."""
    if graph is not None:
        node = graph.node_for(unit, fn)
        if node is not None:
            path = graph.sleep_path(node)
            if path is None:
                return None
            sites: List[str] = []
            for hop, nxt in zip(path, path[1:]):
                offsets = sorted(graph.call_sites.get((hop, nxt), ()))
                if offsets:
                    sites.extend(
                        "%s+0x%x: call %s" % (format_node(hop), off,
                                              nxt[1])
                        for off in offsets)
                else:
                    sites.append("%s: reaches %s (inlined or "
                                 "data-driven edge)"
                                 % (format_node(hop), nxt[1]))
            sleeper = path[-1]
            for off in sorted(graph.sleep_sites.get(sleeper, ())):
                sites.append("%s+0x%x: sleep instruction"
                             % (format_node(sleeper), off))
            chain = " -> ".join(name for _u, name in path)
            return Evidence(
                kind=EVIDENCE_SLEEP_PATH, unit=unit, symbol=fn,
                detail="shortest blocking chain %s: every call site "
                       "and the parked instruction are pinned below"
                       % chain,
                sites=sites,
                facts={"chain": [format_node(n) for n in path],
                       "hops": len(path) - 1,
                       "call_sites": sum(
                           len(graph.call_sites.get((a, b), ()))
                           for a, b in zip(path, path[1:]))})
        return None
    # degraded mode: witness the function's own sleep instructions
    summary = function_summary(pre_obj, fn)
    if summary is None or not summary.sleep_sites:
        return None
    sites = ["%s:%s+0x%x: sleep instruction" % (unit, fn, off)
             for off in sorted(summary.sleep_sites)]
    return Evidence(
        kind=EVIDENCE_SLEEP_PATH, unit=unit, symbol=fn,
        detail="patched function contains its own sleep "
               "instruction(s); no run-kernel build was available "
               "for a chain walk",
        sites=sites,
        facts={"chain": ["%s:%s" % (unit, fn)], "hops": 0,
               "call_sites": 0})


def sleep_evidence_for_diffs(graph: Optional[CallGraph],
                             changed: Dict[str, List[str]],
                             pre_objects: Dict[str, ObjectFile],
                             ) -> List[Evidence]:
    """Evidence for every patched function that can reach a sleep."""
    out: List[Evidence] = []
    for unit in sorted(changed):
        for fn in sorted(changed[unit]):
            ev = sleep_path_evidence(graph, unit, fn,
                                     pre_objects.get(unit))
            if ev is not None:
                out.append(ev)
    return out

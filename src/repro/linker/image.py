"""The linked kernel image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import LinkError
from repro.linker.kallsyms import KallsymsTable


@dataclass(frozen=True)
class PlacedSection:
    """Where one input section landed in the image."""

    unit: str
    name: str
    address: int
    size: int

    @property
    def end(self) -> int:
        return self.address + self.size

    def contains(self, address: int) -> bool:
        return self.address <= address < self.end


@dataclass
class KernelImage:
    """A fully linked, fully relocated kernel.

    ``data`` is the byte image starting at ``base``.  ``placements`` maps
    ``(unit, section_name)`` to the placed section, which is how run-pre
    matching locates the run code for a pre section's optimization unit.
    """

    version: str
    base: int
    data: bytearray
    kallsyms: KallsymsTable
    placements: Dict[Tuple[str, str], PlacedSection] = field(
        default_factory=dict)

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def read_bytes(self, address: int, count: int) -> bytes:
        if not (self.contains(address)
                and address + count <= self.end):
            raise LinkError("read outside kernel image: 0x%08x+%d"
                            % (address, count))
        offset = address - self.base
        return bytes(self.data[offset:offset + count])

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 4), "little")

    def placement(self, unit: str, section_name: str) -> PlacedSection:
        try:
            return self.placements[(unit, section_name)]
        except KeyError:
            raise LinkError("no placed section %s in unit %s"
                            % (section_name, unit)) from None

    def placements_for_unit(self, unit: str) -> List[PlacedSection]:
        return [placed for (u, _), placed in self.placements.items()
                if u == unit]

    def section_at(self, address: int) -> Optional[PlacedSection]:
        for placed in self.placements.values():
            if placed.contains(address):
                return placed
        return None

    def text_range(self) -> Tuple[int, int]:
        """[start, end) covering every text section — "looks like a kernel
        text address" for the conservative stack scan."""
        starts = [p.address for (unit, name), p in self.placements.items()
                  if name == ".text" or name.startswith(".text.")]
        ends = [p.end for (unit, name), p in self.placements.items()
                if name == ".text" or name.startswith(".text.")]
        if not starts:
            return (self.base, self.base)
        return (min(starts), max(ends))

"""kallsyms: the kernel's symbol table, duplicates and all.

The paper reports that 7.9% of the symbols in a Linux 2.6.27 default
build share their name with another symbol and that 21.1% of compilation
units contain at least one such symbol (§6.3).  The census methods here
compute the same statistics for the simulated kernel, and
:meth:`KallsymsTable.candidates` is the ambiguity that run-pre matching
exists to resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SymbolResolutionError
from repro.objfile import SymbolBinding, SymbolKind


@dataclass(frozen=True)
class KallsymsEntry:
    name: str
    address: int
    size: int
    kind: SymbolKind
    binding: SymbolBinding
    unit: str  # defining compilation unit


@dataclass
class KallsymsTable:
    entries: List[KallsymsEntry] = field(default_factory=list)
    _by_name: Dict[str, List[KallsymsEntry]] = field(default_factory=dict,
                                                     repr=False)

    def add(self, entry: KallsymsEntry) -> None:
        self.entries.append(entry)
        self._by_name.setdefault(entry.name, []).append(entry)

    # -- lookups ------------------------------------------------------------

    def candidates(self, name: str) -> List[KallsymsEntry]:
        """Every symbol with this name (possibly several — ambiguity)."""
        return list(self._by_name.get(name, ()))

    def unique_address(self, name: str) -> int:
        """Address of ``name`` iff unambiguous; raises otherwise.

        This models what a naive symbol-table-driven updater does — and
        why it fails on names like the paper's ``notesize``/``debug``.
        """
        found = self.candidates(name)
        if not found:
            raise SymbolResolutionError("symbol %r not in kallsyms" % name)
        if len(found) > 1:
            raise SymbolResolutionError(
                "symbol %r is ambiguous: %d definitions (%s)"
                % (name, len(found),
                   ", ".join(sorted(e.unit for e in found))))
        return found[0].address

    def is_ambiguous(self, name: str) -> bool:
        return len(self._by_name.get(name, ())) > 1

    def symbol_at(self, address: int) -> Optional[KallsymsEntry]:
        """The function/object whose extent covers ``address``, if any."""
        best: Optional[KallsymsEntry] = None
        for entry in self.entries:
            if entry.address <= address < entry.address + max(entry.size, 1):
                if best is None or entry.address > best.address:
                    best = entry
        return best

    def stripped_of_locals(self) -> "KallsymsTable":
        """A copy without local symbols — the shape of a kernel symbol
        table built without CONFIG_KALLSYMS_ALL, where static functions
        "do not appear at all" (§4.1)."""
        stripped = KallsymsTable()
        for entry in self.entries:
            if entry.binding is not SymbolBinding.LOCAL:
                stripped.add(entry)
        return stripped

    # -- census (§6.3 statistics) --------------------------------------------

    def total_symbols(self) -> int:
        return len(self.entries)

    def ambiguous_symbols(self) -> List[KallsymsEntry]:
        return [e for e in self.entries if self.is_ambiguous(e.name)]

    def ambiguous_fraction(self) -> float:
        if not self.entries:
            return 0.0
        return len(self.ambiguous_symbols()) / len(self.entries)

    def units_with_ambiguous_symbols(self) -> List[str]:
        units = {e.unit for e in self.ambiguous_symbols()}
        return sorted(units)

    def unit_ambiguous_fraction(self) -> float:
        all_units = {e.unit for e in self.entries}
        if not all_units:
            return 0.0
        return len(self.units_with_ambiguous_symbols()) / len(all_units)

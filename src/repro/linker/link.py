"""Linking object files into a kernel image."""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Tuple

from repro.errors import LinkError
from repro.kbuild import BuildResult
from repro.linker.image import KernelImage, PlacedSection
from repro.linker.kallsyms import KallsymsEntry, KallsymsTable
from repro.objfile import ObjectFile, Section, SectionKind, SymbolBinding

DEFAULT_KERNEL_BASE = 0xC0100000

#: Image layout order; BSS last so a file-backed image could omit it.
_KIND_ORDER = (SectionKind.TEXT, SectionKind.RODATA, SectionKind.DATA,
               SectionKind.KSPLICE, SectionKind.BSS)


def _align(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    return (value + alignment - 1) & ~(alignment - 1)


def resolve_section_relocations(section: Section, section_address: int,
                                resolver: Callable[[str], int],
                                image: bytearray, image_offset: int) -> None:
    """Patch ``section``'s relocation fields inside ``image``.

    ``resolver`` maps a symbol name to its address; ``image_offset`` is
    where the section's bytes start inside ``image``.  Shared between the
    kernel linker and the module loader.
    """
    for reloc in section.relocations:
        symbol_value = resolver(reloc.symbol)
        place = section_address + reloc.offset
        value = reloc.compute(symbol_value, place)
        struct.pack_into("<I", image, image_offset + reloc.offset, value)


def link_kernel(build: BuildResult,
                base: int = DEFAULT_KERNEL_BASE) -> KernelImage:
    """Link all objects of ``build`` into a kernel image at ``base``."""
    objects = [build.objects[path] for path in sorted(build.objects)]

    placements: Dict[Tuple[str, str], PlacedSection] = {}
    cursor = base
    ordered: List[Tuple[ObjectFile, Section, int]] = []
    for kind in _KIND_ORDER:
        for obj in objects:
            for section in obj.sections.values():
                if section.kind is not kind:
                    continue
                cursor = _align(cursor, max(section.alignment, 1))
                ordered.append((obj, section, cursor))
                placements[(obj.name, section.name)] = PlacedSection(
                    unit=obj.name, name=section.name, address=cursor,
                    size=section.size)
                cursor += section.size

    image = bytearray(cursor - base)
    for obj, section, address in ordered:
        offset = address - base
        image[offset:offset + section.size] = section.data

    global_symbols: Dict[str, int] = {}
    global_owner: Dict[str, str] = {}
    local_symbols: Dict[Tuple[str, str], int] = {}
    kallsyms = KallsymsTable()
    for obj in objects:
        for symbol in obj.defined_symbols():
            address = placements[(obj.name, symbol.section)].address \
                + symbol.value
            if symbol.binding is SymbolBinding.GLOBAL:
                if symbol.name in global_symbols:
                    raise LinkError(
                        "duplicate global symbol %r in %s and %s"
                        % (symbol.name, global_owner[symbol.name], obj.name))
                global_symbols[symbol.name] = address
                global_owner[symbol.name] = obj.name
            else:
                local_symbols[(obj.name, symbol.name)] = address
            kallsyms.add(KallsymsEntry(
                name=symbol.name, address=address, size=symbol.size,
                kind=symbol.kind, binding=symbol.binding, unit=obj.name))

    def resolver_for(obj: ObjectFile) -> Callable[[str], int]:
        def resolve(name: str) -> int:
            local = local_symbols.get((obj.name, name))
            if local is not None:
                return local
            if name in global_symbols:
                return global_symbols[name]
            raise LinkError("undefined symbol %r referenced by %s"
                            % (name, obj.name))
        return resolve

    for obj, section, address in ordered:
        resolve_section_relocations(section, address, resolver_for(obj),
                                    image, address - base)

    return KernelImage(version=build.tree_version, base=base, data=image,
                       kallsyms=kallsyms, placements=placements)

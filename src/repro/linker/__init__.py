"""Static linker and the linked kernel image.

Linking a full build produces a :class:`~repro.linker.image.KernelImage`:
a flat byte image at a fixed base address with every relocation resolved,
plus a kallsyms table that — like the real one — happily contains
duplicate local names from different compilation units.
"""

from repro.linker.kallsyms import KallsymsEntry, KallsymsTable
from repro.linker.image import KernelImage, PlacedSection
from repro.linker.link import link_kernel, resolve_section_relocations

__all__ = [
    "KallsymsEntry",
    "KallsymsTable",
    "KernelImage",
    "PlacedSection",
    "link_kernel",
    "resolve_section_relocations",
]
